"""Broker overlay network with content-based routing.

Models the deployment the paper motivates: "in typical real world
situations we will find peer-to-peer networks of less equipped machines,
such as laptops and mobile devices to perform event filtering" (§1).

Topology and routing follow the classical acyclic-overlay design
(SIENA-style):

* brokers form a **tree** (connecting two already-connected brokers is
  rejected — reverse-path routing needs acyclicity);
* a subscription registered at broker ``B`` is propagated to every
  broker; each broker's :class:`~repro.broker.routing.RoutingTable`
  remembers the neighbor on the path back toward ``B`` (its *next
  hop*) and, with covering enabled (the default), registers the
  subscription on the local engine only when no same-direction
  subscription already covers it;
* an event published at broker ``P`` is matched by ``P``'s engine and
  forwarded only toward neighbors that are the next hop of at least one
  matching subscription; every broker on the path re-matches with its
  own engine and delivers locally when it owns the subscriber.

Every broker filters with its *own* engine over the routed subscription
set, which is exactly the situation whose memory ceiling the paper
analyses — :meth:`BrokerNetwork.memory_report` surfaces it, including
the routing tables themselves.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..core.base import FilterEngine
from ..core.registry import EngineSpec
from ..events.event import Event
from ..events.schema import EventSchema
from ..memory.model import SimulatedMachine
from ..subscriptions.subscription import Subscription
from .broker import (
    Broker,
    Notification,
    coerce_event,
    coerce_events,
    coerce_subscription_id,
    stream_events,
)
from .handle import SubscriptionHandle
from .routing import RoutingTable, RoutingTableStats
from .sinks import DeliverySink


class TopologyError(ValueError):
    """Raised on invalid overlay mutations (cycles, unknown brokers)."""


@dataclass
class NetworkStats:
    """Network-wide counters."""

    events_published: int = 0
    batches_published: int = 0    # publish_batch invocations
    broker_hops: int = 0          # broker-to-broker transmissions (a
                                  # forwarded batch counts one hop)
    matches_computed: int = 0     # per-broker matching invocations (one
                                  # match_batch call counts one)
    notifications_delivered: int = 0
    hops_visited: int = 0         # broker-to-broker subscription
                                  # transmissions, suppressed or not
    registrations_forwarded: int = 0   # remote engine registrations
                                       # actually performed
    suppressed_registrations: int = 0  # covering-elided remote
                                       # registrations (incl. absorptions)
    reinstated_registrations: int = 0  # orphans re-registered after
                                       # their coverer withdrew

    @property
    def subscription_floods(self) -> int:
        """Deprecated alias of :attr:`hops_visited`.

        The old counter conflated transmissions with registrations —
        suppressed hops were still counted as "floods".  Read
        :attr:`hops_visited` for transmissions and
        :attr:`registrations_forwarded` for registrations instead.
        """
        warnings.warn(
            "NetworkStats.subscription_floods is deprecated; read "
            "hops_visited (transmissions) or registrations_forwarded "
            "(actual remote registrations)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.hops_visited


class BrokerNetwork:
    """An acyclic overlay of :class:`~repro.broker.broker.Broker` nodes.

    Parameters
    ----------
    covering_enabled:
        Apply subscription covering (Mühl & Fiege [14], see
        :mod:`repro.subscriptions.covering_index`) during propagation —
        **on by default**.  A remote broker's routing table skips
        registering a new subscription when an already-registered one
        with the **same next hop** covers it, and a late-arriving wide
        subscription absorbs the narrower ones it covers.  The home
        broker always registers its own subscriptions, so deliveries
        are unaffected; when a coverer is withdrawn its covered
        subscriptions are re-absorbed under surviving coverers and
        reinstated only when none remains.
    """

    def __init__(self, *, covering_enabled: bool = True) -> None:
        self._brokers: dict[str, Broker] = {}
        self._neighbors: dict[str, set[str]] = {}
        #: per broker: next hops + suppression state, one table each
        self._routing: dict[str, RoutingTable] = {}
        #: subscription id -> home broker name
        self._home: dict[int, str] = {}
        self._covering_enabled = covering_enabled
        self.stats = NetworkStats()

    @property
    def covering_enabled(self) -> bool:
        """Whether new subscription arrivals may be suppressed.

        Assignable at any time; the toggle propagates to every broker's
        routing table and applies to *subsequent* arrivals (existing
        suppressions stay honored until their entries are withdrawn).
        """
        return self._covering_enabled

    @covering_enabled.setter
    def covering_enabled(self, enabled: bool) -> None:
        self._covering_enabled = enabled
        for table in self._routing.values():
            table.covering_enabled = enabled

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_broker(
        self,
        broker: Broker | str,
        *,
        engine: FilterEngine | EngineSpec | str | None = None,
        schema: EventSchema | None = None,
        machine: SimulatedMachine | None = None,
    ) -> Broker:
        """Add a broker node (initially disconnected).

        Accepts a constructed :class:`~repro.broker.broker.Broker` or
        just a name — with a name, the broker is built here and
        ``engine`` may be an engine spec or registry name, so
        heterogeneous overlays (the paper's peer-device deployments) are
        described declaratively.
        """
        if isinstance(broker, str):
            broker = Broker(
                broker, engine=engine, schema=schema, machine=machine
            )
        elif engine is not None or schema is not None or machine is not None:
            raise TypeError(
                "engine/schema/machine apply only when adding a broker "
                "by name"
            )
        if broker.name in self._brokers:
            raise TopologyError(f"broker {broker.name!r} already present")
        self._brokers[broker.name] = broker
        self._neighbors[broker.name] = set()
        self._routing[broker.name] = RoutingTable(
            broker, covering_enabled=self.covering_enabled
        )
        return broker

    def connect(self, first: str, second: str) -> None:
        """Link two brokers; rejects links that would close a cycle."""
        if first == second:
            raise TopologyError("cannot connect a broker to itself")
        for name in (first, second):
            if name not in self._brokers:
                raise TopologyError(f"unknown broker {name!r}")
        if self._reachable(first, second):
            raise TopologyError(
                f"linking {first!r} and {second!r} would create a cycle; "
                "the overlay must stay acyclic for reverse-path routing"
            )
        self._neighbors[first].add(second)
        self._neighbors[second].add(first)

    def _reachable(self, start: str, goal: str) -> bool:
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for neighbor in self._neighbors[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return False

    def broker(self, name: str) -> Broker:
        """Look up a broker by name."""
        try:
            return self._brokers[name]
        except KeyError:
            raise TopologyError(f"unknown broker {name!r}") from None

    def brokers(self) -> list[Broker]:
        """All brokers in the overlay."""
        return list(self._brokers.values())

    def neighbors(self, name: str) -> frozenset[str]:
        """Neighbor names of a broker."""
        return frozenset(self._neighbors[self.broker(name).name])

    def routing_table(self, name: str) -> RoutingTable:
        """The routing table of one broker (next hops + suppression)."""
        return self._routing[self.broker(name).name]

    # ------------------------------------------------------------------
    # subscription routing
    # ------------------------------------------------------------------
    def subscribe(
        self,
        broker_name: str,
        subscription: Subscription | str,
        *,
        subscriber: str | None = None,
        sink: DeliverySink | Callable[[Notification], None] | None = None,
        callback: Callable[[Notification], None] | None = None,
    ) -> SubscriptionHandle:
        """Register at ``broker_name`` and propagate overlay-wide.

        Returns a :class:`~repro.broker.handle.SubscriptionHandle` that
        withdraws **network-wide** on ``unsubscribe()``; pausing it
        suppresses delivery at the home broker, which is where all of
        this subscription's deliveries happen.
        """
        if sink is not None and callback is not None:
            raise TypeError("pass either sink= or callback=, not both")
        if callback is not None:
            # warn here so the DeprecationWarning points at the caller,
            # not at this forwarding frame
            warnings.warn(
                "callback= is deprecated and will be removed next "
                "release; pass sink= (a DeliverySink or bare callable)",
                DeprecationWarning,
                stacklevel=2,
            )
            sink, callback = callback, None
        home = self.broker(broker_name)
        handle = home.subscribe(subscription, subscriber=subscriber, sink=sink)
        # re-own the handle: its unsubscribe() must withdraw everywhere
        handle._owner = self
        sid = handle.id
        self._home[sid] = home.name
        self._routing[home.name].add_local(handle.subscription)
        self._propagate_subscription(home.name, handle.subscription)
        return handle

    def _propagate_subscription(
        self, origin: str, subscription: Subscription
    ) -> None:
        """Walk the overlay outward from ``origin``, entering the
        subscription into every routing table (the tables decide whether
        the local engine registers it or a coverer suppresses it)."""
        frontier = [(origin, neighbor) for neighbor in self._neighbors[origin]]
        while frontier:
            came_from, current = frontier.pop()
            change = self._routing[current].add_remote(subscription, came_from)
            self.stats.hops_visited += 1
            if change.suppressed_by is not None:
                self.stats.suppressed_registrations += 1
            else:
                self.stats.registrations_forwarded += 1
                # a late-arriving wide subscription absorbs the narrow
                # ones it covers: those count as suppressions too
                self.stats.suppressed_registrations += len(change.absorbed)
            for neighbor in self._neighbors[current]:
                if neighbor != came_from:
                    frontier.append((current, neighbor))

    def unsubscribe(
        self, subscription: SubscriptionHandle | Subscription | int
    ) -> None:
        """Withdraw a subscription (handle, subscription object, or raw
        id) everywhere.

        With covering enabled, subscriptions this one covered are
        re-absorbed under surviving same-direction coverers where
        possible and reinstated into the engines only where none
        remains.
        """
        subscription_id = coerce_subscription_id(subscription)
        home = self._home.pop(subscription_id, None)
        if home is None:
            raise TopologyError(f"unknown subscription {subscription_id}")
        for table in self._routing.values():
            if subscription_id in table:
                change = table.remove(subscription_id)
                self.stats.reinstated_registrations += len(change.reinstated)
                self.stats.suppressed_registrations += len(change.absorbed)

    # ------------------------------------------------------------------
    # event routing
    # ------------------------------------------------------------------
    def publish(
        self,
        broker_name: str,
        events: Event | Mapping | Iterable[Event | Mapping],
    ) -> list[Notification] | list[list[Notification]]:
        """Publish at ``broker_name`` — the single publish surface.

        Mirrors :meth:`Broker.publish`: a single event or mapping takes
        the per-event path and returns its network-wide deliveries; any
        other iterable is materialized once and routed through the
        batched overlay pipeline (result ``i`` holds event ``i``'s
        deliveries).  Use :meth:`stream` for unbounded feeds.
        """
        if isinstance(events, (Event, Mapping)):
            return self._publish_event(broker_name, coerce_event(events))
        return self._publish_batch(broker_name, coerce_events(events))

    def stream(
        self,
        broker_name: str,
        events: Iterable[Event | Mapping],
        *,
        batch_size: int = 256,
    ) -> Iterator[list[Notification]]:
        """Publish a feed at ``broker_name``, batching internally.

        Yields each event's network-wide deliveries in input order,
        pulling at most ``batch_size`` events ahead.
        """
        return stream_events(
            lambda batch: self._publish_batch(broker_name, batch),
            events,
            batch_size,
        )

    def _publish_event(
        self, broker_name: str, event: Event
    ) -> list[Notification]:
        """Per-event reverse-path forwarding.

        The event travels only toward brokers with matching downstream
        subscriptions; each broker on the path re-matches with its own
        engine (standard reverse-path content-based forwarding).
        """
        self.stats.events_published += 1
        deliveries: list[Notification] = []
        frontier: list[tuple[str | None, str]] = [(None, self.broker(broker_name).name)]
        while frontier:
            came_from, current = frontier.pop()
            broker = self._brokers[current]
            if broker.schema is not None:
                broker.schema.validate(event)
            matched = broker.engine.match(event)
            self.stats.matches_computed += 1
            broker.stats.events_published += 1
            if matched:
                broker.stats.events_matched += 1
            hops = self._routing[current].hops
            forward_to: set[str] = set()
            for sid in sorted(matched):
                hop = hops.get(sid)
                if hop is None:
                    # this broker is the subscription's home: deliver
                    # (None means the handle is paused — no delivery)
                    notification = broker.notify_local(event, sid)
                    if notification is not None:
                        deliveries.append(notification)
                elif hop != came_from:
                    forward_to.add(hop)
            for neighbor in forward_to:
                self.stats.broker_hops += 1
                frontier.append((current, neighbor))
        self.stats.notifications_delivered += len(deliveries)
        return deliveries

    def publish_batch(
        self, broker_name: str, events: Iterable[Event | Mapping]
    ) -> list[list[Notification]]:
        """Batch publication; thin alias of :meth:`publish` on an iterable.

        The iterable is materialized exactly once (generators are safe).
        """
        return self._publish_batch(broker_name, coerce_events(events))

    def _publish_batch(
        self, broker_name: str, events: Sequence[Event]
    ) -> list[list[Notification]]:
        """Batched overlay routing; one matching invocation per broker per
        batch.

        Result ``i`` holds the same notifications the per-event path
        would produce for ``events[i]``; only their order within the
        list may differ, since the batched traversal visits brokers in
        its own order.  Routing is batched end to end: each
        broker the batch reaches matches its event subset with a single
        :meth:`~repro.core.base.FilterEngine.match_batch` call, and the
        subset bound for each neighbor is forwarded as one grouped
        transmission (one ``broker_hops`` increment), which is how a real
        overlay would ship a frame of events.
        """
        home = self.broker(broker_name).name
        self.stats.events_published += len(events)
        self.stats.batches_published += 1
        deliveries: list[list[Notification]] = [[] for _ in events]
        if not events:
            return deliveries
        delivered = 0
        #: (came_from, current, indices of events reaching ``current``)
        frontier: list[tuple[str | None, str, list[int]]] = [
            (None, home, list(range(len(events))))
        ]
        while frontier:
            came_from, current, indices = frontier.pop()
            broker = self._brokers[current]
            subset = [events[index] for index in indices]
            if broker.schema is not None:
                for event in subset:
                    broker.schema.validate(event)
            matched_sets = broker.engine.match_batch(subset)
            self.stats.matches_computed += 1
            broker.stats.events_published += len(subset)
            next_hop = self._routing[current].hops
            forward: dict[str, list[int]] = {}
            for index, matched in zip(indices, matched_sets):
                if matched:
                    broker.stats.events_matched += 1
                forwarded_to: set[str] = set()
                for sid in sorted(matched):
                    hop = next_hop.get(sid)
                    if hop is None:
                        # this broker is the subscription's home: deliver
                        # (None means the handle is paused — no delivery)
                        notification = broker.notify_local(events[index], sid)
                        if notification is not None:
                            deliveries[index].append(notification)
                            delivered += 1
                    elif hop != came_from and hop not in forwarded_to:
                        forwarded_to.add(hop)
                        forward.setdefault(hop, []).append(index)
            for neighbor, neighbor_indices in forward.items():
                self.stats.broker_hops += 1
                frontier.append((current, neighbor, neighbor_indices))
        self.stats.notifications_delivered += delivered
        return deliveries

    # ------------------------------------------------------------------
    # resource reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> dict[str, dict[str, int]]:
        """Per-broker memory breakdowns (paper cost model).

        Engine components plus the broker's routing table, so the
        overlay's full working set is visible in one report.
        """
        report = {}
        for name, broker in self._brokers.items():
            breakdown = dict(broker.engine.memory_breakdown())
            breakdown["routing_table"] = self._routing[name].memory_bytes()
            report[name] = breakdown
        return report

    def routing_report(self) -> dict[str, RoutingTableStats]:
        """Per-broker routing-table shapes (entries, suppression)."""
        return {
            name: table.stats() for name, table in self._routing.items()
        }

    def suppression_ratio(self) -> float:
        """Fraction of remote routing-table entries currently suppressed.

        Computed from live table state, not the cumulative counters
        (absorption and reinstatement churn can suppress one entry many
        times over its life), so the ratio is always in ``[0, 1]`` and
        describes the compaction the overlay holds *right now*.
        """
        remote = 0
        suppressed = 0
        for table in self._routing.values():
            shape = table.stats()
            remote += shape.entries - shape.local
            suppressed += shape.suppressed
        if not remote:
            return 0.0
        return suppressed / remote

    def shard_report(self) -> dict[str, list[dict]]:
        """Per-broker, per-shard engine stats.

        Sharded brokers contribute one entry per shard, unsharded
        brokers a single entry — see :meth:`Broker.shard_stats`.
        """
        return {
            name: broker.shard_stats()
            for name, broker in self._brokers.items()
        }

    def memory_pressure(self) -> dict[str, float]:
        """Per-broker aggregated memory pressure (0.0 without a machine
        model; sharded engines report the sum of their shards).

        Includes the broker's routing table in the working set — the
        overlay's own state competes for the same memory budget the
        paper's cost model covers.
        """
        pressure = {}
        for name, broker in self._brokers.items():
            if broker.machine is None:
                pressure[name] = 0.0
            else:
                pressure[name] = broker.memory_pressure() + (
                    self._routing[name].memory_bytes()
                    / broker.machine.available_bytes
                )
        return pressure

    def __len__(self) -> int:
        return len(self._brokers)
