"""Broker overlay network with content-based routing.

Models the deployment the paper motivates: "in typical real world
situations we will find peer-to-peer networks of less equipped machines,
such as laptops and mobile devices to perform event filtering" (§1).

Topology and routing follow the classical acyclic-overlay design
(SIENA-style):

* brokers form a **tree** (connecting two already-connected brokers is
  rejected — reverse-path routing needs acyclicity);
* a subscription registered at broker ``B`` is **flooded** to every
  broker; each broker remembers, per subscription, the neighbor on the
  path back toward ``B`` (its *next hop*);
* an event published at broker ``P`` is matched by ``P``'s engine and
  forwarded only toward neighbors that are the next hop of at least one
  matching subscription; every broker on the path re-matches with its
  own engine and delivers locally when it owns the subscriber.

Every broker therefore filters with its *own* engine over the full
subscription set, which is exactly the situation whose memory ceiling
the paper analyses — :meth:`BrokerNetwork.memory_report` surfaces it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..core.base import FilterEngine
from ..core.registry import EngineSpec
from ..events.event import Event
from ..events.schema import EventSchema
from ..memory.model import SimulatedMachine
from ..subscriptions.covering import covers
from ..subscriptions.subscription import Subscription
from .broker import (
    Broker,
    Notification,
    coerce_event,
    coerce_events,
    coerce_subscription_id,
    stream_events,
)
from .handle import SubscriptionHandle
from .sinks import DeliverySink


class TopologyError(ValueError):
    """Raised on invalid overlay mutations (cycles, unknown brokers)."""


@dataclass
class NetworkStats:
    """Network-wide counters."""

    events_published: int = 0
    batches_published: int = 0    # publish_batch invocations
    broker_hops: int = 0          # broker-to-broker transmissions (a
                                  # forwarded batch counts one hop)
    matches_computed: int = 0     # per-broker matching invocations (one
                                  # match_batch call counts one)
    notifications_delivered: int = 0
    subscription_floods: int = 0  # broker-to-broker subscription transmissions
    suppressed_registrations: int = 0  # covering-elided remote registrations


class BrokerNetwork:
    """An acyclic overlay of :class:`~repro.broker.broker.Broker` nodes.

    Parameters
    ----------
    covering_enabled:
        Apply subscription covering (Mühl & Fiege [14], see
        :mod:`repro.subscriptions.covering`) during flooding: a remote
        broker skips registering a new subscription when an
        already-registered one with the **same next hop** covers it —
        events for the covered subscription then ride the coverer's
        forwarding.  The home broker always registers its own
        subscriptions, so deliveries are unaffected; when a coverer is
        withdrawn its covered subscriptions are reinstated.
    """

    def __init__(self, *, covering_enabled: bool = False) -> None:
        self._brokers: dict[str, Broker] = {}
        self._neighbors: dict[str, set[str]] = {}
        #: per broker: subscription id -> neighbor toward the home broker
        #: (``None`` for the home broker itself)
        self._next_hop: dict[str, dict[int, str | None]] = {}
        #: subscription id -> home broker name
        self._home: dict[int, str] = {}
        #: subscription id -> (expression, subscriber), for reinstatement
        self._definitions: dict[int, tuple] = {}
        #: per broker: covered subscription id -> covering subscription id
        self._suppressed: dict[str, dict[int, int]] = {}
        self.covering_enabled = covering_enabled
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_broker(
        self,
        broker: Broker | str,
        *,
        engine: FilterEngine | EngineSpec | str | None = None,
        schema: EventSchema | None = None,
        machine: SimulatedMachine | None = None,
    ) -> Broker:
        """Add a broker node (initially disconnected).

        Accepts a constructed :class:`~repro.broker.broker.Broker` or
        just a name — with a name, the broker is built here and
        ``engine`` may be an engine spec or registry name, so
        heterogeneous overlays (the paper's peer-device deployments) are
        described declaratively.
        """
        if isinstance(broker, str):
            broker = Broker(
                broker, engine=engine, schema=schema, machine=machine
            )
        elif engine is not None or schema is not None or machine is not None:
            raise TypeError(
                "engine/schema/machine apply only when adding a broker "
                "by name"
            )
        if broker.name in self._brokers:
            raise TopologyError(f"broker {broker.name!r} already present")
        self._brokers[broker.name] = broker
        self._neighbors[broker.name] = set()
        self._next_hop[broker.name] = {}
        self._suppressed[broker.name] = {}
        return broker

    def connect(self, first: str, second: str) -> None:
        """Link two brokers; rejects links that would close a cycle."""
        if first == second:
            raise TopologyError("cannot connect a broker to itself")
        for name in (first, second):
            if name not in self._brokers:
                raise TopologyError(f"unknown broker {name!r}")
        if self._reachable(first, second):
            raise TopologyError(
                f"linking {first!r} and {second!r} would create a cycle; "
                "the overlay must stay acyclic for reverse-path routing"
            )
        self._neighbors[first].add(second)
        self._neighbors[second].add(first)

    def _reachable(self, start: str, goal: str) -> bool:
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for neighbor in self._neighbors[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return False

    def broker(self, name: str) -> Broker:
        """Look up a broker by name."""
        try:
            return self._brokers[name]
        except KeyError:
            raise TopologyError(f"unknown broker {name!r}") from None

    def brokers(self) -> list[Broker]:
        """All brokers in the overlay."""
        return list(self._brokers.values())

    def neighbors(self, name: str) -> frozenset[str]:
        """Neighbor names of a broker."""
        return frozenset(self._neighbors[self.broker(name).name])

    # ------------------------------------------------------------------
    # subscription routing
    # ------------------------------------------------------------------
    def subscribe(
        self,
        broker_name: str,
        subscription: Subscription | str,
        *,
        subscriber: str | None = None,
        sink: DeliverySink | Callable[[Notification], None] | None = None,
        callback: Callable[[Notification], None] | None = None,
    ) -> SubscriptionHandle:
        """Register at ``broker_name`` and flood to the whole overlay.

        Returns a :class:`~repro.broker.handle.SubscriptionHandle` that
        withdraws **network-wide** on ``unsubscribe()``; pausing it
        suppresses delivery at the home broker, which is where all of
        this subscription's deliveries happen.
        """
        if sink is not None and callback is not None:
            raise TypeError("pass either sink= or callback=, not both")
        if callback is not None:
            # warn here so the DeprecationWarning points at the caller,
            # not at this forwarding frame
            warnings.warn(
                "callback= is deprecated and will be removed next "
                "release; pass sink= (a DeliverySink or bare callable)",
                DeprecationWarning,
                stacklevel=2,
            )
            sink, callback = callback, None
        home = self.broker(broker_name)
        handle = home.subscribe(subscription, subscriber=subscriber, sink=sink)
        # re-own the handle: its unsubscribe() must withdraw everywhere
        handle._owner = self
        sid = handle.id
        self._home[sid] = home.name
        self._next_hop[home.name][sid] = None
        self._definitions[sid] = (handle.expression, handle.subscriber)
        self._flood_subscription(home.name, handle.subscription)
        return handle

    def _flood_subscription(self, origin: str, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        frontier = [(origin, neighbor) for neighbor in self._neighbors[origin]]
        while frontier:
            came_from, current = frontier.pop()
            coverer = (
                self._find_coverer(current, came_from, subscription.expression)
                if self.covering_enabled
                else None
            )
            self._next_hop[current][sid] = came_from
            if coverer is not None:
                self._suppressed[current][sid] = coverer
                self.stats.suppressed_registrations += 1
            else:
                # remote registration: match-only, no local callback
                self._brokers[current].subscribe(
                    Subscription(
                        expression=subscription.expression,
                        subscriber=subscription.subscriber,
                        subscription_id=sid,
                    )
                )
            self.stats.subscription_floods += 1
            for neighbor in self._neighbors[current]:
                if neighbor != came_from:
                    frontier.append((current, neighbor))

    def _find_coverer(self, broker_name, direction, expression):
        """A registered subscription at ``broker_name`` whose next hop is
        ``direction`` and whose expression covers ``expression``.

        The same-direction requirement is what makes suppression sound:
        any event matching the covered subscription matches the coverer,
        so the broker still forwards it toward ``direction`` — the covered
        subscription's home lies that way too.
        """
        hops = self._next_hop[broker_name]
        suppressed = self._suppressed[broker_name]
        for candidate, hop in hops.items():
            if hop != direction or candidate in suppressed:
                continue
            definition = self._definitions.get(candidate)
            if definition is not None and covers(definition[0], expression):
                return candidate
        return None

    def unsubscribe(
        self, subscription: SubscriptionHandle | Subscription | int
    ) -> None:
        """Withdraw a subscription (handle, subscription object, or raw
        id) everywhere.

        With covering enabled, subscriptions this one covered are
        reinstated at every broker where it had absorbed them.
        """
        subscription_id = coerce_subscription_id(subscription)
        home = self._home.pop(subscription_id, None)
        if home is None:
            raise TopologyError(f"unknown subscription {subscription_id}")
        for name, broker in self._brokers.items():
            hops = self._next_hop[name]
            suppressed = self._suppressed[name]
            if subscription_id in hops:
                if suppressed.pop(subscription_id, None) is None:
                    broker.unsubscribe(subscription_id)
                del hops[subscription_id]
            # reinstate anything this subscription was covering here
            orphans = [
                covered
                for covered, coverer in suppressed.items()
                if coverer == subscription_id
            ]
            for covered in orphans:
                del suppressed[covered]
                expression, subscriber = self._definitions[covered]
                broker.subscribe(
                    Subscription(
                        expression=expression,
                        subscriber=subscriber,
                        subscription_id=covered,
                    )
                )
        self._definitions.pop(subscription_id, None)

    # ------------------------------------------------------------------
    # event routing
    # ------------------------------------------------------------------
    def publish(
        self,
        broker_name: str,
        events: Event | Mapping | Iterable[Event | Mapping],
    ) -> list[Notification] | list[list[Notification]]:
        """Publish at ``broker_name`` — the single publish surface.

        Mirrors :meth:`Broker.publish`: a single event or mapping takes
        the per-event path and returns its network-wide deliveries; any
        other iterable is materialized once and routed through the
        batched overlay pipeline (result ``i`` holds event ``i``'s
        deliveries).  Use :meth:`stream` for unbounded feeds.
        """
        if isinstance(events, (Event, Mapping)):
            return self._publish_event(broker_name, coerce_event(events))
        return self._publish_batch(broker_name, coerce_events(events))

    def stream(
        self,
        broker_name: str,
        events: Iterable[Event | Mapping],
        *,
        batch_size: int = 256,
    ) -> Iterator[list[Notification]]:
        """Publish a feed at ``broker_name``, batching internally.

        Yields each event's network-wide deliveries in input order,
        pulling at most ``batch_size`` events ahead.
        """
        return stream_events(
            lambda batch: self._publish_batch(broker_name, batch),
            events,
            batch_size,
        )

    def _publish_event(
        self, broker_name: str, event: Event
    ) -> list[Notification]:
        """Per-event reverse-path forwarding.

        The event travels only toward brokers with matching downstream
        subscriptions; each broker on the path re-matches with its own
        engine (standard reverse-path content-based forwarding).
        """
        self.stats.events_published += 1
        deliveries: list[Notification] = []
        frontier: list[tuple[str | None, str]] = [(None, self.broker(broker_name).name)]
        while frontier:
            came_from, current = frontier.pop()
            broker = self._brokers[current]
            if broker.schema is not None:
                broker.schema.validate(event)
            matched = broker.engine.match(event)
            self.stats.matches_computed += 1
            broker.stats.events_published += 1
            if matched:
                broker.stats.events_matched += 1
            forward_to: set[str] = set()
            for sid in sorted(matched):
                hop = self._next_hop[current].get(sid)
                if hop is None:
                    # this broker is the subscription's home: deliver
                    # (None means the handle is paused — no delivery)
                    notification = broker.notify_local(event, sid)
                    if notification is not None:
                        deliveries.append(notification)
                elif hop != came_from:
                    forward_to.add(hop)
            for neighbor in forward_to:
                self.stats.broker_hops += 1
                frontier.append((current, neighbor))
        self.stats.notifications_delivered += len(deliveries)
        return deliveries

    def publish_batch(
        self, broker_name: str, events: Iterable[Event | Mapping]
    ) -> list[list[Notification]]:
        """Batch publication; thin alias of :meth:`publish` on an iterable.

        The iterable is materialized exactly once (generators are safe).
        """
        return self._publish_batch(broker_name, coerce_events(events))

    def _publish_batch(
        self, broker_name: str, events: Sequence[Event]
    ) -> list[list[Notification]]:
        """Batched overlay routing; one matching invocation per broker per
        batch.

        Result ``i`` holds the same notifications the per-event path
        would produce for ``events[i]``; only their order within the
        list may differ, since the batched traversal visits brokers in
        its own order.  Routing is batched end to end: each
        broker the batch reaches matches its event subset with a single
        :meth:`~repro.core.base.FilterEngine.match_batch` call, and the
        subset bound for each neighbor is forwarded as one grouped
        transmission (one ``broker_hops`` increment), which is how a real
        overlay would ship a frame of events.
        """
        home = self.broker(broker_name).name
        self.stats.events_published += len(events)
        self.stats.batches_published += 1
        deliveries: list[list[Notification]] = [[] for _ in events]
        if not events:
            return deliveries
        delivered = 0
        #: (came_from, current, indices of events reaching ``current``)
        frontier: list[tuple[str | None, str, list[int]]] = [
            (None, home, list(range(len(events))))
        ]
        while frontier:
            came_from, current, indices = frontier.pop()
            broker = self._brokers[current]
            subset = [events[index] for index in indices]
            if broker.schema is not None:
                for event in subset:
                    broker.schema.validate(event)
            matched_sets = broker.engine.match_batch(subset)
            self.stats.matches_computed += 1
            broker.stats.events_published += len(subset)
            next_hop = self._next_hop[current]
            forward: dict[str, list[int]] = {}
            for index, matched in zip(indices, matched_sets):
                if matched:
                    broker.stats.events_matched += 1
                forwarded_to: set[str] = set()
                for sid in sorted(matched):
                    hop = next_hop.get(sid)
                    if hop is None:
                        # this broker is the subscription's home: deliver
                        # (None means the handle is paused — no delivery)
                        notification = broker.notify_local(events[index], sid)
                        if notification is not None:
                            deliveries[index].append(notification)
                            delivered += 1
                    elif hop != came_from and hop not in forwarded_to:
                        forwarded_to.add(hop)
                        forward.setdefault(hop, []).append(index)
            for neighbor, neighbor_indices in forward.items():
                self.stats.broker_hops += 1
                frontier.append((current, neighbor, neighbor_indices))
        self.stats.notifications_delivered += delivered
        return deliveries

    # ------------------------------------------------------------------
    # resource reporting
    # ------------------------------------------------------------------
    def memory_report(self) -> dict[str, dict[str, int]]:
        """Per-broker engine memory breakdowns (paper cost model)."""
        return {
            name: dict(broker.engine.memory_breakdown())
            for name, broker in self._brokers.items()
        }

    def shard_report(self) -> dict[str, list[dict]]:
        """Per-broker, per-shard engine stats.

        Sharded brokers contribute one entry per shard, unsharded
        brokers a single entry — see :meth:`Broker.shard_stats`.
        """
        return {
            name: broker.shard_stats()
            for name, broker in self._brokers.items()
        }

    def memory_pressure(self) -> dict[str, float]:
        """Per-broker aggregated memory pressure (0.0 without a machine
        model; sharded engines report the sum of their shards)."""
        return {
            name: broker.memory_pressure()
            for name, broker in self._brokers.items()
        }

    def __len__(self) -> int:
        return len(self._brokers)
