"""Delivery sinks: where a subscription's notifications go.

A :class:`DeliverySink` is the delivery half of a subscription — the
broker matches, the sink receives.  Sinks unify what used to be two
ad-hoc paths (a bare ``callback`` argument and
``Subscriber.notifications`` list bookkeeping) and give the system its
first backpressure knob: :class:`QueueSink` bounds its depth and counts
what it drops, which is what a broker on a "less equipped machine"
(paper §1) must do when a subscriber cannot keep up.

Every sink counts deliveries in :attr:`DeliverySink.delivered`;
:func:`as_sink` adapts plain callables, so legacy ``callback=`` call
sites keep working.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .broker import Notification


class DeliverySink(abc.ABC):
    """Destination for one subscription's notifications."""

    def __init__(self) -> None:
        #: notifications this sink accepted over its lifetime
        self.delivered = 0

    def deliver(self, notification: Notification) -> bool:
        """Offer a notification; returns whether the sink accepted it."""
        if self._accept(notification):
            self.delivered += 1
            return True
        return False

    @abc.abstractmethod
    def _accept(self, notification: Notification) -> bool:
        """Sink-specific acceptance; returns False to drop."""


class CallbackSink(DeliverySink):
    """Invoke a callable per notification (the legacy ``callback`` path)."""

    def __init__(self, callback: Callable[[Notification], None]) -> None:
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        super().__init__()
        self.callback = callback

    def _accept(self, notification: Notification) -> bool:
        self.callback(notification)
        return True

    def __repr__(self) -> str:
        return f"CallbackSink({self.callback!r})"


class CollectingSink(DeliverySink):
    """Accumulate notifications in a list (the ``Subscriber`` path)."""

    def __init__(self) -> None:
        super().__init__()
        self.notifications: list[Notification] = []

    def _accept(self, notification: Notification) -> bool:
        self.notifications.append(notification)
        return True

    def clear(self) -> None:
        """Forget collected notifications (between test phases)."""
        self.notifications.clear()

    def __len__(self) -> int:
        return len(self.notifications)

    def __iter__(self) -> Iterator[Notification]:
        return iter(self.notifications)

    def __repr__(self) -> str:
        return f"CollectingSink(pending={len(self)})"


class QueueSink(DeliverySink):
    """A bounded notification queue with drop accounting.

    Parameters
    ----------
    maxsize:
        Queue depth bound; ``None`` means unbounded.
    policy:
        What to do with a notification arriving at a full queue:
        ``"drop-newest"`` rejects the arrival, ``"drop-oldest"`` evicts
        the head to make room (the arrival is accepted).

    :attr:`dropped` counts every notification lost either way — the
    backpressure signal an operator watches.
    """

    POLICIES = ("drop-newest", "drop-oldest")

    def __init__(
        self, maxsize: int | None = None, *, policy: str = "drop-newest"
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be at least 1 (or None)")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; use one of {self.POLICIES}"
            )
        super().__init__()
        self.maxsize = maxsize
        self.policy = policy
        #: notifications lost to the bound (either policy)
        self.dropped = 0
        self._pending: deque[Notification] = deque()

    def _accept(self, notification: Notification) -> bool:
        if self.maxsize is not None and len(self._pending) >= self.maxsize:
            self.dropped += 1
            if self.policy == "drop-newest":
                return False
            self._pending.popleft()
        self._pending.append(notification)
        return True

    @property
    def depth(self) -> int:
        """Notifications currently queued."""
        return len(self._pending)

    def pop(self) -> Notification | None:
        """Dequeue the oldest pending notification (``None`` when empty)."""
        return self._pending.popleft() if self._pending else None

    def drain(self) -> list[Notification]:
        """Dequeue everything pending, oldest first."""
        drained = list(self._pending)
        self._pending.clear()
        return drained

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        bound = "∞" if self.maxsize is None else self.maxsize
        return f"QueueSink(depth={self.depth}/{bound}, dropped={self.dropped})"


def as_sink(
    target: DeliverySink | Callable[[Notification], None] | None,
) -> DeliverySink | None:
    """Normalize a delivery target: sink, bare callable, or ``None``."""
    if target is None or isinstance(target, DeliverySink):
        return target
    if callable(target):
        return CallbackSink(target)
    raise TypeError(f"expected a DeliverySink, a callable, or None; got {target!r}")
