"""A single pub/sub broker.

A broker owns a matching engine (pluggable — any
:class:`~repro.core.base.FilterEngine`), accepts subscriptions and
publications, validates events against an optional schema, delivers
notifications to subscriber callbacks, and models the machine it runs on
(paper §1 motivates filtering on "laptops and mobile devices" rather
than designated servers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.base import FilterEngine
from ..core.noncanonical import NonCanonicalEngine
from ..events.event import Event
from ..events.schema import EventSchema
from ..memory.model import SimulatedMachine
from ..subscriptions.subscription import Subscription


@dataclass(frozen=True)
class Notification:
    """A delivery: ``event`` matched ``subscription_id`` for ``subscriber``."""

    event: Event
    subscription_id: int
    subscriber: str | None
    broker: str


@dataclass
class BrokerStats:
    """Counters a broker maintains over its lifetime."""

    events_published: int = 0
    events_matched: int = 0          # events with >= 1 local match
    batches_published: int = 0       # publish_batch invocations
    notifications_delivered: int = 0
    subscriptions_registered: int = 0
    subscriptions_removed: int = 0


class Broker:
    """A standalone content-based pub/sub broker.

    Parameters
    ----------
    name:
        Broker identity (used in notifications and overlay routing).
    engine:
        Matching engine; defaults to a fresh
        :class:`~repro.core.noncanonical.NonCanonicalEngine`.
    schema:
        Optional event schema enforced at the publish boundary.
    machine:
        Optional simulated machine; when set,
        :meth:`memory_pressure` reports how close the engine's working
        set is to the machine's budget.
    """

    def __init__(
        self,
        name: str,
        *,
        engine: FilterEngine | None = None,
        schema: EventSchema | None = None,
        machine: SimulatedMachine | None = None,
    ) -> None:
        if not name:
            raise ValueError("broker name must be non-empty")
        self.name = name
        self.engine = engine if engine is not None else NonCanonicalEngine()
        self.schema = schema
        self.machine = machine
        self.stats = BrokerStats()
        self._callbacks: dict[int, Callable[[Notification], None] | None] = {}
        self._subscriptions: dict[int, Subscription] = {}

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscription: Subscription | str,
        *,
        subscriber: str | None = None,
        callback: Callable[[Notification], None] | None = None,
    ) -> Subscription:
        """Register a subscription (object or source text).

        Returns the registered :class:`Subscription` (with its assigned
        id) so callers can later unsubscribe.
        """
        if isinstance(subscription, str):
            subscription = Subscription.from_text(
                subscription, subscriber=subscriber
            )
        elif subscriber is not None and subscription.subscriber != subscriber:
            subscription = Subscription(
                expression=subscription.expression,
                subscriber=subscriber,
                subscription_id=subscription.subscription_id,
            )
        self.engine.register(subscription)
        self._callbacks[subscription.subscription_id] = callback
        self._subscriptions[subscription.subscription_id] = subscription
        self.stats.subscriptions_registered += 1
        return subscription

    def unsubscribe(self, subscription_id: int) -> None:
        """Remove a subscription by id."""
        self.engine.unregister(subscription_id)
        self._callbacks.pop(subscription_id, None)
        self._subscriptions.pop(subscription_id, None)
        self.stats.subscriptions_removed += 1

    def subscription(self, subscription_id: int) -> Subscription:
        """The registered subscription object for ``subscription_id``."""
        return self._subscriptions[subscription_id]

    @property
    def subscription_count(self) -> int:
        """Number of live subscriptions at this broker."""
        return self.engine.subscription_count

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, event: Event) -> list[Notification]:
        """Match ``event`` and deliver notifications to local subscribers.

        Raises
        ------
        SchemaViolationError
            When a schema is configured and the event does not conform.
        """
        if self.schema is not None:
            self.schema.validate(event)
        self.stats.events_published += 1
        matched = self.engine.match(event)
        if matched:
            self.stats.events_matched += 1
        notifications = self._deliver(event, matched)
        self.stats.notifications_delivered += len(notifications)
        return notifications

    def publish_batch(
        self, events: Sequence[Event]
    ) -> list[list[Notification]]:
        """Match a batch with one engine invocation; deliver per event.

        Result ``i`` equals ``publish(events[i])``'s return value, but
        the engine is entered once for the whole batch
        (:meth:`~repro.core.base.FilterEngine.match_batch`), amortizing
        phase-1 probes and phase-2 dispatch.  Schema validation happens
        up front for the *whole* batch, so a violating event rejects the
        batch before any notification is delivered.

        Raises
        ------
        SchemaViolationError
            When a schema is configured and any event does not conform.
        """
        events = list(events)
        if self.schema is not None:
            for event in events:
                self.schema.validate(event)
        self.stats.events_published += len(events)
        self.stats.batches_published += 1
        matched_sets = self.engine.match_batch(events)
        batched: list[list[Notification]] = []
        delivered = 0
        for event, matched in zip(events, matched_sets):
            if matched:
                self.stats.events_matched += 1
            notifications = self._deliver(event, matched)
            delivered += len(notifications)
            batched.append(notifications)
        self.stats.notifications_delivered += delivered
        return batched

    def _deliver(self, event: Event, matched: set[int]) -> list[Notification]:
        """Build and deliver notifications for one matched event."""
        notifications = []
        for subscription_id in sorted(matched):
            subscription = self._subscriptions.get(subscription_id)
            subscriber = (
                subscription.subscriber if subscription is not None else None
            )
            notification = Notification(
                event=event,
                subscription_id=subscription_id,
                subscriber=subscriber,
                broker=self.name,
            )
            callback = self._callbacks.get(subscription_id)
            if callback is not None:
                callback(notification)
            notifications.append(notification)
        return notifications

    def notify_local(self, event: Event, subscription_id: int) -> Notification:
        """Deliver one notification to a locally-registered subscriber.

        Used by the overlay network when an event reaches a
        subscription's home broker; also invokes the callback.
        """
        subscription = self._subscriptions[subscription_id]
        notification = Notification(
            event=event,
            subscription_id=subscription_id,
            subscriber=subscription.subscriber,
            broker=self.name,
        )
        callback = self._callbacks.get(subscription_id)
        if callback is not None:
            callback(notification)
        self.stats.notifications_delivered += 1
        return notification

    # ------------------------------------------------------------------
    # resource model
    # ------------------------------------------------------------------
    def memory_pressure(self) -> float:
        """Engine working set as a fraction of the machine budget.

        Returns 0.0 when no machine model is attached; values above 1.0
        mean the simulated machine would be swapping.
        """
        if self.machine is None:
            return 0.0
        return self.engine.memory_bytes() / self.machine.available_bytes

    def __repr__(self) -> str:
        return (
            f"Broker({self.name!r}, engine={self.engine.name!r}, "
            f"subscriptions={self.subscription_count})"
        )
