"""A single pub/sub broker.

A broker owns a matching engine (pluggable — an instance, an
:class:`~repro.core.registry.EngineSpec`, or a registry name), accepts
subscriptions and publications, delivers notifications through
:mod:`delivery sinks <repro.broker.sinks>`, validates events against an
optional schema, and models the machine it runs on (paper §1 motivates
filtering on "laptops and mobile devices" rather than designated
servers).

The public surface:

* :meth:`Broker.subscribe` returns a
  :class:`~repro.broker.handle.SubscriptionHandle` owning the
  subscription's lifecycle (``unsubscribe``/``pause``/``resume``) and
  its delivery sink;
* :meth:`Broker.publish` is the one publish surface — it accepts a
  single :class:`~repro.events.event.Event`, a plain mapping, or an
  iterable of either (routed through the batch matching pipeline);
* :meth:`Broker.stream` generates per-event deliveries for feeds too
  large to materialize, batching internally.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..core.base import FilterEngine
from ..core.registry import EngineSpec, resolve_engine
from ..events.event import Event
from ..events.schema import EventSchema
from ..memory.model import SimulatedMachine
from ..subscriptions.subscription import Subscription
from .handle import SubscriptionHandle
from .sinks import DeliverySink, as_sink


@dataclass(frozen=True)
class Notification:
    """A delivery: ``event`` matched ``subscription_id`` for ``subscriber``."""

    event: Event
    subscription_id: int
    subscriber: str | None
    broker: str


@dataclass
class BrokerStats:
    """Counters a broker maintains over its lifetime."""

    events_published: int = 0
    events_matched: int = 0          # events with >= 1 local match
    batches_published: int = 0       # batch publications (one per batch)
    notifications_delivered: int = 0
    subscriptions_registered: int = 0
    subscriptions_removed: int = 0


def coerce_event(event: Event | Mapping) -> Event:
    """Normalize one publishable item (an event or a plain mapping)."""
    if isinstance(event, Event):
        return event
    if isinstance(event, Mapping):
        return Event(event)
    raise TypeError(f"expected an Event or a mapping, got {event!r}")


def require_event_iterable(events) -> None:
    """Reject values that are single events (or plain wrong) where an
    iterable *of* events is required — eagerly, with a useful message."""
    if isinstance(events, (Event, Mapping, str, bytes)) or not isinstance(
        events, Iterable
    ):
        raise TypeError(
            f"expected an iterable of events, got {events!r}; "
            "a single event/mapping goes to publish() directly"
        )


def coerce_events(events: Iterable[Event | Mapping]) -> list[Event]:
    """Materialize an iterable of publishable items exactly once.

    Generators are consumed here and nowhere else — every publish path
    funnels through this single materialization, so counting and
    matching always see the same batch.
    """
    require_event_iterable(events)
    return [coerce_event(event) for event in events]


def iter_event_batches(
    events: Iterable[Event | Mapping], batch_size: int
) -> Iterator[list[Event]]:
    """Chunk a feed into coerced batches of at most ``batch_size``.

    The accumulate-and-flush loop behind every ``stream()`` surface
    (broker, network, publisher); pulls at most ``batch_size`` events
    ahead of the consumer.
    """
    require_event_iterable(events)
    batch: list[Event] = []
    for event in events:
        batch.append(coerce_event(event))
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def coerce_subscription_id(subscription) -> int:
    """Normalize a handle, subscription object, or raw id to the id.

    The shared coercion behind every ``unsubscribe()`` surface.
    """
    if isinstance(subscription, int):
        return subscription
    subscription_id = getattr(subscription, "subscription_id", None)
    if subscription_id is None:
        raise TypeError(
            "expected a SubscriptionHandle, Subscription, or int id; "
            f"got {subscription!r}"
        )
    return subscription_id


def stream_events(
    publish_batch: Callable[[list[Event]], list[list[Notification]]],
    events: Iterable[Event | Mapping],
    batch_size: int,
) -> Iterator[list[Notification]]:
    """The one ``stream()`` implementation behind every surface.

    Validates eagerly (bad ``batch_size`` or a single event passed where
    a feed belongs fail at the call, not at first ``next()``), then
    yields each event's notification list, publishing one coerced batch
    at a time through ``publish_batch``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    require_event_iterable(events)

    def generate() -> Iterator[list[Notification]]:
        for batch in iter_event_batches(events, batch_size):
            yield from publish_batch(batch)

    return generate()


class Broker:
    """A standalone content-based pub/sub broker.

    Parameters
    ----------
    name:
        Broker identity (used in notifications and overlay routing).
    engine:
        Matching engine: a :class:`~repro.core.base.FilterEngine`
        instance, an :class:`~repro.core.registry.EngineSpec`, or a
        registry name (e.g. ``"counting"``).  Defaults to a fresh
        non-canonical engine.
    schema:
        Optional event schema enforced at the publish boundary.
    machine:
        Optional simulated machine; when set,
        :meth:`memory_pressure` reports how close the engine's working
        set is to the machine's budget.
    """

    def __init__(
        self,
        name: str,
        *,
        engine: FilterEngine | EngineSpec | str | None = None,
        schema: EventSchema | None = None,
        machine: SimulatedMachine | None = None,
    ) -> None:
        if not name:
            raise ValueError("broker name must be non-empty")
        self.name = name
        self.engine = resolve_engine(engine)
        self.schema = schema
        self.machine = machine
        self.stats = BrokerStats()
        self._handles: dict[int, SubscriptionHandle] = {}

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        subscription: Subscription | str,
        *,
        subscriber: str | None = None,
        sink: DeliverySink | Callable[[Notification], None] | None = None,
        callback: Callable[[Notification], None] | None = None,
    ) -> SubscriptionHandle:
        """Register a subscription (object or source text).

        Returns the :class:`~repro.broker.handle.SubscriptionHandle`
        owning the registration.  ``sink`` takes a
        :class:`~repro.broker.sinks.DeliverySink` or a bare callable;
        ``callback`` is the deprecated spelling of a callable sink and
        will be removed next release.
        """
        if sink is not None and callback is not None:
            raise TypeError("pass either sink= or callback=, not both")
        if callback is not None:
            warnings.warn(
                "callback= is deprecated and will be removed next "
                "release; pass sink= (a DeliverySink or bare callable)",
                DeprecationWarning,
                stacklevel=2,
            )
        if isinstance(subscription, str):
            subscription = Subscription.from_text(
                subscription, subscriber=subscriber
            )
        elif subscriber is not None and subscription.subscriber != subscriber:
            subscription = Subscription(
                expression=subscription.expression,
                subscriber=subscriber,
                subscription_id=subscription.subscription_id,
            )
        self.engine.register(subscription)
        handle = SubscriptionHandle(
            subscription,
            sink=as_sink(sink if sink is not None else callback),
            owner=self,
        )
        self._handles[subscription.subscription_id] = handle
        self.stats.subscriptions_registered += 1
        return handle

    def unsubscribe(
        self, subscription: SubscriptionHandle | Subscription | int
    ) -> None:
        """Remove a subscription (handle, subscription object, or raw id).

        Raises :class:`~repro.core.base.UnknownSubscriptionError` for an
        id that is not registered; prefer
        :meth:`SubscriptionHandle.unsubscribe`, which is idempotent.
        """
        subscription_id = coerce_subscription_id(subscription)
        self.engine.unregister(subscription_id)
        handle = self._handles.pop(subscription_id, None)
        if handle is not None:
            handle._invalidate()
        self.stats.subscriptions_removed += 1

    def subscription(self, subscription_id: int) -> Subscription:
        """The registered subscription object for ``subscription_id``."""
        return self._handles[subscription_id].subscription

    def handle(self, subscription_id: int) -> SubscriptionHandle:
        """The live handle for ``subscription_id``."""
        return self._handles[subscription_id]

    def handles(self) -> list[SubscriptionHandle]:
        """All live handles, in registration (id) order."""
        return [self._handles[sid] for sid in sorted(self._handles)]

    def subscriptions(self) -> list[Subscription]:
        """All registered subscriptions, in id order."""
        return [handle.subscription for handle in self.handles()]

    @property
    def subscription_count(self) -> int:
        """Number of live subscriptions at this broker."""
        return self.engine.subscription_count

    # ------------------------------------------------------------------
    # publication — one surface
    # ------------------------------------------------------------------
    def publish(
        self, events: Event | Mapping | Iterable[Event | Mapping]
    ) -> list[Notification] | list[list[Notification]]:
        """Publish one event or a batch — the single publish surface.

        * an :class:`~repro.events.event.Event` or plain mapping is
          matched on the per-event path and returns its notifications;
        * any other iterable (list, tuple, generator, ...) is
          materialized once and routed through the batch matching
          pipeline; result ``i`` holds the deliveries of event ``i``.

        For unbounded feeds, use :meth:`stream` instead of passing a
        huge iterable.

        Raises
        ------
        SchemaViolationError
            When a schema is configured and an event does not conform
            (a violating event rejects its whole batch before any
            delivery happens).
        """
        if isinstance(events, (Event, Mapping)):
            return self._publish_event(coerce_event(events))
        return self._publish_batch(coerce_events(events))

    def publish_batch(
        self, events: Iterable[Event | Mapping]
    ) -> list[list[Notification]]:
        """Batch publication; thin alias of :meth:`publish` on an iterable.

        The iterable is materialized exactly once (generators are safe);
        the whole batch is schema-validated up front and matched with
        one engine invocation
        (:meth:`~repro.core.base.FilterEngine.match_batch`).
        """
        return self._publish_batch(coerce_events(events))

    def stream(
        self,
        events: Iterable[Event | Mapping],
        *,
        batch_size: int = 256,
    ) -> Iterator[list[Notification]]:
        """Publish a (possibly unbounded) feed, batching internally.

        Yields each event's notification list, in input order, while
        pulling at most ``batch_size`` events ahead — the streaming face
        of the batch pipeline.
        """
        return stream_events(self._publish_batch, events, batch_size)

    def _publish_event(self, event: Event) -> list[Notification]:
        """Per-event path: match one event, deliver, count."""
        if self.schema is not None:
            self.schema.validate(event)
        self.stats.events_published += 1
        matched = self.engine.match(event)
        if matched:
            self.stats.events_matched += 1
        notifications = self._deliver(event, matched)
        self.stats.notifications_delivered += len(notifications)
        return notifications

    def _publish_batch(
        self, events: Sequence[Event]
    ) -> list[list[Notification]]:
        """Batch path: one engine invocation, per-event delivery."""
        if self.schema is not None:
            for event in events:
                self.schema.validate(event)
        self.stats.events_published += len(events)
        self.stats.batches_published += 1
        matched_sets = self.engine.match_batch(events)
        batched: list[list[Notification]] = []
        delivered = 0
        for event, matched in zip(events, matched_sets):
            if matched:
                self.stats.events_matched += 1
            notifications = self._deliver(event, matched)
            delivered += len(notifications)
            batched.append(notifications)
        self.stats.notifications_delivered += delivered
        return batched

    def _deliver(self, event: Event, matched: set[int]) -> list[Notification]:
        """Build and deliver notifications for one matched event.

        Paused handles are skipped entirely (no notification object).  A
        bounded sink may still drop internally — that shows up in the
        sink's own ``dropped`` counter, not here.
        """
        notifications = []
        for subscription_id in sorted(matched):
            handle = self._handles.get(subscription_id)
            if handle is not None and handle.paused:
                continue
            notification = Notification(
                event=event,
                subscription_id=subscription_id,
                subscriber=handle.subscriber if handle is not None else None,
                broker=self.name,
            )
            if handle is not None and handle.sink is not None:
                handle.sink.deliver(notification)
            notifications.append(notification)
        return notifications

    def notify_local(
        self, event: Event, subscription_id: int
    ) -> Notification | None:
        """Deliver one notification to a locally-registered subscriber.

        Used by the overlay network when an event reaches a
        subscription's home broker; feeds the handle's sink.  Returns
        ``None`` (and delivers nothing) when the handle is paused.
        """
        handle = self._handles[subscription_id]
        if handle.paused:
            return None
        notification = Notification(
            event=event,
            subscription_id=subscription_id,
            subscriber=handle.subscriber,
            broker=self.name,
        )
        if handle.sink is not None:
            handle.sink.deliver(notification)
        self.stats.notifications_delivered += 1
        return notification

    # ------------------------------------------------------------------
    # resource model / maintenance
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the lifetime counters; live subscriptions are untouched."""
        self.stats = BrokerStats()

    def memory_pressure(self) -> float:
        """Engine working set as a fraction of the machine budget.

        Returns 0.0 when no machine model is attached; values above 1.0
        mean the simulated machine would be swapping.  For a sharded
        engine this is the *aggregated* pressure — the engine's memory
        accounting sums its shards.
        """
        if self.machine is None:
            return 0.0
        return self.engine.memory_bytes() / self.machine.available_bytes

    def engine_stats(self) -> dict:
        """The engine's counters as plain data (name, counts, memory)."""
        return self.engine.stats()

    def shard_stats(self) -> list[dict]:
        """Per-shard stats of the broker's engine.

        One entry per shard for a sharded engine; a single entry (the
        whole engine) otherwise, so monitoring code can treat every
        broker uniformly.
        """
        per_shard = getattr(self.engine, "shard_stats", None)
        if per_shard is not None:
            return per_shard()
        return [self.engine.stats()]

    def __repr__(self) -> str:
        return (
            f"Broker({self.name!r}, engine={self.engine.name!r}, "
            f"subscriptions={self.subscription_count})"
        )
