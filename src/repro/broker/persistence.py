"""Subscription persistence: save and restore broker state.

Brokers on "less equipped machines" (paper §1) restart; a production
deployment needs its subscription population to survive.  Subscriptions
serialize to JSON lines — one object per subscription with its id,
subscriber and the expression in the subscription language's textual
form (the parser round-trips everything :func:`repro.subscriptions.parse`
accepts, which the parser test suite pins).

Example
-------
>>> broker = Broker("edge")
>>> broker.subscribe("price > 10", subscriber="alice")     # doctest: +SKIP
>>> save_broker(broker, "subscriptions.jsonl")             # doctest: +SKIP
>>> restored = Broker("edge-2")
>>> restore_broker(restored, "subscriptions.jsonl")        # doctest: +SKIP
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..subscriptions.parser import parse
from ..subscriptions.subscription import Subscription
from .broker import Broker

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised when a subscription file is malformed."""


def serialize_subscription(subscription: Subscription) -> str:
    """One subscription as a JSON line."""
    return json.dumps(
        {
            "v": FORMAT_VERSION,
            "id": subscription.subscription_id,
            "subscriber": subscription.subscriber,
            "expression": str(subscription.expression),
        },
        sort_keys=True,
    )


def deserialize_subscription(line: str) -> Subscription:
    """Parse one JSON line back into a subscription.

    Raises
    ------
    PersistenceError
        On malformed JSON, missing fields, unsupported versions, or
        expressions the subscription language cannot parse.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise PersistenceError(f"malformed subscription line: {error}") from None
    if not isinstance(payload, dict):
        raise PersistenceError(f"expected an object, got {payload!r}")
    version = payload.get("v")
    if version != FORMAT_VERSION:
        raise PersistenceError(f"unsupported format version {version!r}")
    missing = {"id", "expression"} - set(payload)
    if missing:
        raise PersistenceError(f"missing fields: {sorted(missing)}")
    try:
        expression = parse(payload["expression"])
    except ValueError as error:
        raise PersistenceError(
            f"unparseable expression {payload['expression']!r}: {error}"
        ) from None
    identifier = payload["id"]
    if not isinstance(identifier, int) or identifier <= 0:
        raise PersistenceError(f"invalid subscription id {identifier!r}")
    return Subscription(
        expression=expression,
        subscriber=payload.get("subscriber"),
        subscription_id=identifier,
    )


def dump_subscriptions(
    subscriptions: Iterable[Subscription], path: str | Path
) -> int:
    """Write subscriptions to ``path`` (JSON lines); returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for subscription in subscriptions:
            handle.write(serialize_subscription(subscription) + "\n")
            count += 1
    return count


def load_subscriptions(path: str | Path) -> list[Subscription]:
    """Read subscriptions back from ``path``."""
    subscriptions = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                subscriptions.append(deserialize_subscription(line))
            except PersistenceError as error:
                raise PersistenceError(f"line {number}: {error}") from None
    return subscriptions


def save_broker(broker: Broker, path: str | Path) -> int:
    """Persist every live subscription of ``broker``."""
    return dump_subscriptions(broker.subscriptions(), path)


def restore_broker(broker: Broker, path: str | Path) -> int:
    """Register every persisted subscription with ``broker``.

    Callbacks are not persisted (they are process-local callables);
    subscribers re-attach by id after a restore.
    """
    subscriptions = load_subscriptions(path)
    for subscription in subscriptions:
        broker.subscribe(subscription)
    return len(subscriptions)
