"""Per-broker routing tables: next hops plus covering suppression.

A :class:`RoutingTable` owns every piece of routing state one broker
carries in the overlay:

* **next hops** — subscription id -> the neighbor toward the
  subscription's home broker (``None`` when this broker *is* the home);
* **suppression** — one incremental
  :class:`~repro.subscriptions.covering_index.CoveringIndex` per
  direction.  A remote subscription whose index arrival reports a
  same-direction coverer is *suppressed*: it gets a next hop but no
  engine registration, because any event it matches also matches its
  coverer and is already forwarded the same way (Mühl & Fiege [14]).

The same-direction requirement is what makes suppression sound: the
coverer's next hop equals the covered subscription's, so forwarding
decisions made on the coverer alone still push matching events toward
the covered subscription's home, where it remains fully registered and
delivers normally.

Suppression is maintained in *both* temporal directions: a narrow
subscription arriving after a wide one is suppressed on arrival, and a
wide subscription arriving late **absorbs** already-registered narrow
ones (they are unregistered from the engine).  On withdrawal of a
coverer, its orphans are re-absorbed under surviving coverers where one
exists and reinstated into the engine only when none does — churn never
permanently degrades the table back to flooding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..subscriptions.covering_index import CoveringIndex
from ..subscriptions.subscription import Subscription
from .broker import Broker

#: Paper-style cost-model charge per routing-table entry: a next-hop
#: pointer plus poset bookkeeping (id, coverer link, bucket slot).
ROUTING_ENTRY_BYTES = 32


@dataclass(frozen=True)
class RouteChange:
    """What one table mutation did, for the network's accounting.

    ``registered``/``unregistered`` count *engine* registrations this
    change performed; ``suppressed_by`` is set when the subject
    subscription was elided under a coverer; ``absorbed`` lists
    previously-registered ids this change newly suppressed;
    ``reinstated`` lists ids this change re-registered because their
    coverer left and no other covers them.
    """

    subscription_id: int
    suppressed_by: int | None = None
    absorbed: tuple[int, ...] = ()
    reinstated: tuple[int, ...] = ()


@dataclass
class RoutingTableStats:
    """Current-shape counters of one broker's table."""

    entries: int = 0
    registered: int = 0
    suppressed: int = 0
    local: int = 0


class RoutingTable:
    """All routing state of one broker in the overlay.

    Parameters
    ----------
    broker:
        The broker whose engine this table drives; remote registrations
        and reinstatements go through ``broker.subscribe`` /
        ``broker.unsubscribe`` so engine state always mirrors the table.
    covering_enabled:
        When ``False`` the table degenerates to pure next-hop flooding
        (every remote subscription registered, no indexes).
    max_clauses:
        Clause cap for the covering indexes' DNF derivations.
    """

    def __init__(
        self,
        broker: Broker,
        *,
        covering_enabled: bool = True,
        max_clauses: int = 4_096,
    ) -> None:
        self.broker = broker
        self.covering_enabled = covering_enabled
        self.max_clauses = max_clauses
        #: subscription id -> neighbor toward home (None = home here)
        self._hops: dict[int, str | None] = {}
        #: subscription id -> the routed subscription (for reinstatement)
        self._subscriptions: dict[int, Subscription] = {}
        #: one covering poset per outbound direction
        self._indexes: dict[str, CoveringIndex] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._hops)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._hops

    @property
    def hops(self) -> dict[int, str | None]:
        """The live next-hop mapping (the event-routing hot path reads
        this directly; treat it as read-only)."""
        return self._hops

    def next_hop(self, subscription_id: int) -> str | None:
        """Neighbor toward the subscription's home (None = home here)."""
        return self._hops[subscription_id]

    def subscription(self, subscription_id: int) -> Subscription:
        """The routed subscription object."""
        return self._subscriptions[subscription_id]

    def is_suppressed(self, subscription_id: int) -> bool:
        """Whether the id rides a coverer instead of being registered."""
        direction = self._hops.get(subscription_id)
        if direction is None:
            return False
        index = self._indexes.get(direction)
        return index is not None and index.is_covered(subscription_id)

    def coverer_of(self, subscription_id: int) -> int | None:
        """The suppressing coverer, or ``None``."""
        direction = self._hops.get(subscription_id)
        if direction is None:
            return None
        index = self._indexes.get(direction)
        return index.coverer_of(subscription_id) if index else None

    def suppressed(self) -> dict[int, int]:
        """Covered subscription id -> covering subscription id."""
        mapping: dict[int, int] = {}
        for index in self._indexes.values():
            mapping.update(index.covered_mapping())
        return mapping

    def index_for(self, direction: str) -> CoveringIndex | None:
        """The covering poset of one direction (None when untouched)."""
        return self._indexes.get(direction)

    def stats(self) -> RoutingTableStats:
        """Current table shape, for reports and invariant checks."""
        suppressed = sum(
            index.covered_count() for index in self._indexes.values()
        )
        local = sum(1 for hop in self._hops.values() if hop is None)
        return RoutingTableStats(
            entries=len(self._hops),
            registered=len(self._hops) - suppressed,
            suppressed=suppressed,
            local=local,
        )

    def memory_bytes(self) -> int:
        """Table working set under the paper-style cost model."""
        return ROUTING_ENTRY_BYTES * len(self._hops)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_local(self, subscription: Subscription) -> RouteChange:
        """Record a home registration (the broker already holds the
        live handle; locals are never suppressed)."""
        sid = subscription.subscription_id
        self._hops[sid] = None
        self._subscriptions[sid] = subscription
        return RouteChange(sid)

    def add_remote(
        self, subscription: Subscription, direction: str
    ) -> RouteChange:
        """Route a flooded subscription arriving from ``direction``.

        Registers it on the broker's engine unless a same-direction
        coverer suppresses it; a maximal arrival absorbs (unregisters)
        the same-direction subscriptions it covers.
        """
        sid = subscription.subscription_id
        self._hops[sid] = direction
        self._subscriptions[sid] = subscription
        if not self.covering_enabled:
            self._register(sid)
            return RouteChange(sid)
        index = self._indexes.setdefault(
            direction, CoveringIndex(max_clauses=self.max_clauses)
        )
        outcome = index.add(sid, subscription.expression)
        if outcome.covered_by is not None:
            return RouteChange(sid, suppressed_by=outcome.covered_by)
        self._register(sid)
        for absorbed in outcome.newly_covered:
            self.broker.unsubscribe(absorbed)
        return RouteChange(sid, absorbed=outcome.newly_covered)

    def remove(self, subscription_id: int) -> RouteChange:
        """Withdraw a subscription from this broker's table.

        Unregisters it from the engine when it was registered; orphans
        it covered are re-absorbed under surviving coverers or
        reinstated into the engine when none survives.  A reinstated
        wide orphan may itself absorb previously-registered members
        (``RouteChange.absorbed``) — those are unregistered here.
        """
        direction = self._hops.pop(subscription_id)
        self._subscriptions.pop(subscription_id)
        # membership in a direction index — not the current flag — decides
        # the withdrawal path, so toggling covering_enabled mid-life
        # leaves previously-indexed subscriptions consistent
        index = (
            self._indexes.get(direction) if direction is not None else None
        )
        if index is None or subscription_id not in index:
            # home registrations keep their live handle; the broker
            # unsubscribe also invalidates it
            self.broker.unsubscribe(subscription_id)
            return RouteChange(subscription_id)
        outcome = index.remove(subscription_id)
        if outcome.was_covered:
            return RouteChange(subscription_id, suppressed_by=outcome.coverer)
        self.broker.unsubscribe(subscription_id)
        for orphan in outcome.newly_exposed:
            self._register(orphan)
        for victim in outcome.absorbed:
            self.broker.unsubscribe(victim)
        return RouteChange(
            subscription_id,
            reinstated=outcome.newly_exposed,
            absorbed=outcome.absorbed,
        )

    def _register(self, subscription_id: int) -> None:
        """Match-only engine registration of a routed subscription."""
        source = self._subscriptions[subscription_id]
        self.broker.subscribe(
            Subscription(
                expression=source.expression,
                subscriber=source.subscriber,
                subscription_id=subscription_id,
            )
        )
