"""Broker substrate: single broker, clients, and the overlay network."""

from .broker import Broker, BrokerStats, Notification
from .client import Publisher, Subscriber
from .handle import SubscriptionHandle
from .network import BrokerNetwork, NetworkStats, TopologyError
from .routing import RouteChange, RoutingTable, RoutingTableStats
from .sinks import (
    CallbackSink,
    CollectingSink,
    DeliverySink,
    QueueSink,
    as_sink,
)
from .persistence import (
    PersistenceError,
    dump_subscriptions,
    load_subscriptions,
    restore_broker,
    save_broker,
)

__all__ = [
    "Broker",
    "BrokerStats",
    "Notification",
    "Publisher",
    "Subscriber",
    "SubscriptionHandle",
    "CallbackSink",
    "CollectingSink",
    "DeliverySink",
    "QueueSink",
    "as_sink",
    "BrokerNetwork",
    "NetworkStats",
    "TopologyError",
    "RouteChange",
    "RoutingTable",
    "RoutingTableStats",
    "PersistenceError",
    "dump_subscriptions",
    "load_subscriptions",
    "restore_broker",
    "save_broker",
]
