"""Broker substrate: single broker, clients, and the overlay network."""

from .broker import Broker, BrokerStats, Notification
from .client import Publisher, Subscriber
from .network import BrokerNetwork, NetworkStats, TopologyError
from .persistence import (
    PersistenceError,
    dump_subscriptions,
    load_subscriptions,
    restore_broker,
    save_broker,
)

__all__ = [
    "Broker",
    "BrokerStats",
    "Notification",
    "Publisher",
    "Subscriber",
    "BrokerNetwork",
    "NetworkStats",
    "TopologyError",
    "PersistenceError",
    "dump_subscriptions",
    "load_subscriptions",
    "restore_broker",
    "save_broker",
]
