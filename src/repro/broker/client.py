"""Client-side helpers: subscribers and publishers.

Thin convenience wrappers around a :class:`~repro.broker.broker.Broker`
(or a network attachment point) that keep per-client state: a
subscriber's received notifications, a publisher's publication count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..events.event import Event
from ..subscriptions.subscription import Subscription
from .broker import Broker, Notification

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .network import BrokerNetwork


class Subscriber:
    """A named client that collects its notifications.

    Example
    -------
    >>> broker = Broker("edge")
    >>> alice = Subscriber("alice", broker)
    >>> sub = alice.subscribe("price > 10")
    >>> broker.publish(Event({"price": 12}))  # doctest: +ELLIPSIS
    [...]
    >>> len(alice.notifications)
    1
    """

    def __init__(self, name: str, broker: Broker) -> None:
        if not name:
            raise ValueError("subscriber name must be non-empty")
        self.name = name
        self.broker = broker
        self.notifications: list[Notification] = []
        self._subscription_ids: set[int] = set()

    def subscribe(self, subscription: Subscription | str) -> Subscription:
        """Register interest; notifications accumulate on this object."""
        registered = self.broker.subscribe(
            subscription, subscriber=self.name, callback=self._receive
        )
        self._subscription_ids.add(registered.subscription_id)
        return registered

    def unsubscribe(self, subscription_id: int) -> None:
        """Drop one of this subscriber's subscriptions."""
        if subscription_id not in self._subscription_ids:
            raise KeyError(
                f"{self.name} does not own subscription {subscription_id}"
            )
        self.broker.unsubscribe(subscription_id)
        self._subscription_ids.discard(subscription_id)

    def unsubscribe_all(self) -> None:
        """Drop every subscription this subscriber owns."""
        for subscription_id in list(self._subscription_ids):
            self.unsubscribe(subscription_id)

    @property
    def subscription_ids(self) -> frozenset[int]:
        """Ids of this subscriber's live subscriptions."""
        return frozenset(self._subscription_ids)

    def _receive(self, notification: Notification) -> None:
        self.notifications.append(notification)

    def clear(self) -> None:
        """Forget received notifications (between test phases)."""
        self.notifications.clear()


class Publisher:
    """A named client that publishes events through one broker."""

    def __init__(self, name: str, broker: Broker) -> None:
        if not name:
            raise ValueError("publisher name must be non-empty")
        self.name = name
        self.broker = broker
        self.published_count = 0

    def publish(self, event: Event | dict) -> list[Notification]:
        """Publish an event (accepts a plain mapping for convenience)."""
        if not isinstance(event, Event):
            event = Event(event)
        self.published_count += 1
        return self.broker.publish(event)

    def publish_batch(self, events) -> list[list[Notification]]:
        """Publish a batch through the broker's batched matching path."""
        prepared = [
            event if isinstance(event, Event) else Event(event)
            for event in events
        ]
        self.published_count += len(prepared)
        return self.broker.publish_batch(prepared)
