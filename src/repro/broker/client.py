"""Client-side helpers: subscribers and publishers.

Thin convenience wrappers around a :class:`~repro.broker.broker.Broker`
that keep per-client state.  A :class:`Subscriber` owns the
:class:`~repro.broker.handle.SubscriptionHandle` of every subscription
it registers and funnels deliveries into one
:class:`~repro.broker.sinks.CollectingSink`; a :class:`Publisher`
counts what it publishes through the broker's unified publish surface.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..events.event import Event
from ..subscriptions.subscription import Subscription
from .broker import (
    Broker,
    Notification,
    coerce_event,
    coerce_events,
    coerce_subscription_id,
    stream_events,
)
from .handle import SubscriptionHandle
from .sinks import CollectingSink


class Subscriber:
    """A named client that collects its notifications.

    Example
    -------
    >>> broker = Broker("edge")
    >>> alice = Subscriber("alice", broker)
    >>> sub = alice.subscribe("price > 10")
    >>> broker.publish(Event({"price": 12}))  # doctest: +ELLIPSIS
    [...]
    >>> len(alice.notifications)
    1
    """

    def __init__(self, name: str, broker: Broker) -> None:
        if not name:
            raise ValueError("subscriber name must be non-empty")
        self.name = name
        self.broker = broker
        #: one sink shared by every subscription this client registers
        self.sink = CollectingSink()
        self._handles: dict[int, SubscriptionHandle] = {}

    def subscribe(self, subscription: Subscription | str) -> SubscriptionHandle:
        """Register interest; notifications accumulate on :attr:`sink`."""
        handle = self.broker.subscribe(
            subscription, subscriber=self.name, sink=self.sink
        )
        self._handles[handle.id] = handle
        return handle

    def unsubscribe(
        self, subscription: SubscriptionHandle | Subscription | int
    ) -> None:
        """Drop one of this subscriber's subscriptions (handle,
        subscription object, or raw id)."""
        subscription_id = coerce_subscription_id(subscription)
        handle = self._handles.pop(subscription_id, None)
        if handle is None:
            raise KeyError(
                f"{self.name} does not own subscription {subscription_id}"
            )
        handle.unsubscribe()

    def unsubscribe_all(self) -> None:
        """Drop every subscription this subscriber owns."""
        for subscription_id in list(self._handles):
            self.unsubscribe(subscription_id)

    @property
    def notifications(self) -> list[Notification]:
        """Notifications received so far (the sink's collection)."""
        return self.sink.notifications

    def _prune_withdrawn(self) -> None:
        """Forget handles withdrawn behind our back (handle.unsubscribe
        talks to the broker, not to this wrapper)."""
        for sid in [
            sid for sid, h in self._handles.items() if not h.active
        ]:
            del self._handles[sid]

    @property
    def handles(self) -> list[SubscriptionHandle]:
        """Handles of this subscriber's live subscriptions, in id order."""
        self._prune_withdrawn()
        return [self._handles[sid] for sid in sorted(self._handles)]

    @property
    def subscription_ids(self) -> frozenset[int]:
        """Ids of this subscriber's live subscriptions."""
        self._prune_withdrawn()
        return frozenset(self._handles)

    def clear(self) -> None:
        """Forget received notifications (between test phases)."""
        self.sink.clear()


class Publisher:
    """A named client that publishes events through one broker."""

    def __init__(self, name: str, broker: Broker) -> None:
        if not name:
            raise ValueError("publisher name must be non-empty")
        self.name = name
        self.broker = broker
        self.published_count = 0

    def publish(
        self, events: Event | Mapping | Iterable[Event | Mapping]
    ) -> list[Notification] | list[list[Notification]]:
        """Publish an event, a mapping, or an iterable of either.

        Mirrors :meth:`Broker.publish`: iterables (including
        generators) are materialized exactly once, counted, and routed
        through the batch matching pipeline.
        """
        if isinstance(events, (Event, Mapping)):
            self.published_count += 1
            return self.broker.publish(coerce_event(events))
        prepared = coerce_events(events)
        self.published_count += len(prepared)
        return self.broker.publish_batch(prepared)

    def publish_batch(
        self, events: Iterable[Event | Mapping]
    ) -> list[list[Notification]]:
        """Publish a batch through the broker's batched matching path.

        The iterable is materialized (and coerced) exactly once — a
        generator is consumed here and the resulting batch is both what
        gets counted and what gets matched.
        """
        prepared = coerce_events(events)
        self.published_count += len(prepared)
        return self.broker.publish_batch(prepared)

    def stream(
        self,
        events: Iterable[Event | Mapping],
        *,
        batch_size: int = 256,
    ) -> Iterator[list[Notification]]:
        """Stream a feed through the broker, batching internally.

        ``published_count`` moves when a batch is published (matching
        the broker's own counters even if the consumer stops early), not
        per yielded event.
        """

        def publish_and_count(batch):
            self.published_count += len(batch)
            return self.broker.publish_batch(batch)

        return stream_events(publish_and_count, events, batch_size)
