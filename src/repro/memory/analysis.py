"""Closed-form memory models of the filtering engines.

"In the future we want to theoretically investigate memory consumptions
of different filtering algorithms" (paper §5).  This module is that
analysis for the paper's evaluation workload, and the test suite
cross-checks every formula against the byte counts the engines actually
report — the models are *exact*, not asymptotic.

Workload recap (paper §4): each original subscription has ``|p| = 2k``
unique predicates arranged as an AND of ``k`` binary ORs; DNF expands it
into ``2**k`` clauses of ``k`` predicates each; predicates are unshared
between subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import DEFAULT_COST_MODEL, CostModel


@dataclass(frozen=True)
class PaperWorkloadShape:
    """The subscription shape of the paper's experiments.

    Parameters
    ----------
    predicates_per_subscription:
        The paper's ``|p|``; must be even (``|p| = 2k``).
    """

    predicates_per_subscription: int

    def __post_init__(self) -> None:
        if self.predicates_per_subscription < 2:
            raise ValueError("need at least two predicates")
        if self.predicates_per_subscription % 2:
            raise ValueError(
                "the paper's workload uses an even predicate count (|p| = 2k)"
            )

    @property
    def k(self) -> int:
        """Number of binary OR groups (``|p| / 2``)."""
        return self.predicates_per_subscription // 2

    @property
    def dnf_clauses_per_subscription(self) -> int:
        """``2**(|p|/2)`` — paper §4."""
        return 2 ** self.k

    @property
    def predicates_per_clause(self) -> int:
        """``|p|/2`` — paper §4."""
        return self.k


def noncanonical_tree_bytes(
    shape: PaperWorkloadShape, model: CostModel = DEFAULT_COST_MODEL
) -> int:
    """Encoded size of one subscription tree under the basic codec.

    The tree is an AND with ``k`` OR children, each OR holding two
    predicate leaves: the root costs ``2 + 2k`` header bytes, each OR
    child ``2 + 2*2`` header bytes plus two 4-byte leaves.
    """
    k = shape.k
    header = model.operator_bytes + model.child_count_bytes
    root = header + k * model.child_width_bytes
    or_node = (
        header
        + 2 * model.child_width_bytes
        + 2 * model.predicate_id_bytes
    )
    return root + k * or_node


def noncanonical_bytes(
    subscriptions: int,
    shape: PaperWorkloadShape,
    model: CostModel = DEFAULT_COST_MODEL,
) -> int:
    """Total phase-2 bytes of the non-canonical engine.

    Trees + association table (unique predicates: one table entry and
    one subscription reference per predicate) + location table.
    """
    predicates = subscriptions * shape.predicates_per_subscription
    trees = subscriptions * noncanonical_tree_bytes(shape, model)
    association = model.association_table_bytes(predicates, predicates)
    location = model.location_table_bytes(subscriptions)
    return trees + association + location


def counting_bytes(
    subscriptions: int,
    shape: PaperWorkloadShape,
    model: CostModel = DEFAULT_COST_MODEL,
    *,
    support_unsubscription: bool = False,
) -> int:
    """Total phase-2 bytes of the counting engine (either variant).

    After transformation there are ``N * 2**k`` clauses; each original
    predicate participates in half of its subscription's clauses
    (``2**(k-1)``), which is what multiplies the association table.
    """
    clauses = subscriptions * shape.dnf_clauses_per_subscription
    predicates = subscriptions * shape.predicates_per_subscription
    clause_references = subscriptions * shape.k * shape.dnf_clauses_per_subscription
    total = (
        model.bit_vector_bytes(predicates)
        + model.vector_bytes(clauses)          # hit vector
        + model.vector_bytes(clauses)          # count vector
        + clauses * model.subscription_id_bytes  # clause -> original id
        + model.association_table_bytes(predicates, clause_references)
    )
    if support_unsubscription:
        per_clause = model.subscription_id_bytes
        per_reference = model.predicate_id_bytes
        total += clauses * per_clause + clause_references * per_reference
    return total


def capacity(
    budget_bytes: int,
    shape: PaperWorkloadShape,
    engine: str,
    model: CostModel = DEFAULT_COST_MODEL,
) -> int:
    """Largest subscription count whose phase-2 bytes fit the budget.

    Both models are linear in N, so this is a straight division; the
    paper's §4.1 claim — the non-canonical engine "easily handles more
    than 4 times as many subscriptions" at ``|p| = 10`` — is
    ``capacity(B, shape, "non-canonical") / capacity(B, shape, "counting")``.
    """
    if engine == "non-canonical":
        per_subscription = noncanonical_bytes(1, shape, model)
    elif engine == "counting":
        per_subscription = counting_bytes(1, shape, model)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return budget_bytes // per_subscription


def capacity_ratio(
    shape: PaperWorkloadShape, model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """How many times more subscriptions the non-canonical engine holds.

    Budget-independent (both costs are linear in N).
    """
    return counting_bytes(1, shape, model) / noncanonical_bytes(1, shape, model)
