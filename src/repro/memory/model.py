"""Simulated machine: memory budget and page-swap slowdown.

The paper ran on a real 1.8 GHz / 512 MB machine; the "sharp bends" in
Fig. 3 "denote the point when available main memory resources are
exhausted and the operating system starts page swapping" (§4.1).

We substitute that physical machine with an analytic model (DESIGN.md
§3): engines report their working set in bytes under the paper's cost
model, and :class:`SimulatedMachine` converts any working set that
exceeds the available budget into a matching-time multiplier.  The
multiplier grows with the *fraction of the working set that lives in
swap*, scaled by how much slower a swapped access is than a resident
one — producing exactly the linear-then-steeper shape of the paper's
curves, with the bend at the point where bytes run out.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class SimulatedMachine:
    """The evaluation machine of paper Table 1, as an analytic model.

    Parameters
    ----------
    total_memory_bytes:
        Physical RAM (paper: 512 MB).
    os_reserved_bytes:
        Memory not available to the filtering process (operating system,
        process image, phase-1 indexes); the paper's bends imply roughly
        this much headroom.
    swap_penalty:
        How much slower an access to a swapped page is compared to a
        resident one.  Disk-versus-RAM latencies of the paper's era give
        values in the tens of thousands; because matching touches a small
        working subset per event we use an *effective* penalty on the
        order of tens, which reproduces the observed bend steepness.
        EXPERIMENTS.md records the calibration.
    """

    total_memory_bytes: int = 512 * MIB
    os_reserved_bytes: int = 96 * MIB
    swap_penalty: float = 40.0

    def __post_init__(self) -> None:
        if self.total_memory_bytes <= 0:
            raise ValueError("total_memory_bytes must be positive")
        if not 0 <= self.os_reserved_bytes < self.total_memory_bytes:
            raise ValueError(
                "os_reserved_bytes must be non-negative and below total memory"
            )
        if self.swap_penalty < 0:
            raise ValueError("swap_penalty must be non-negative")

    @property
    def available_bytes(self) -> int:
        """Bytes available to engine data structures."""
        return self.total_memory_bytes - self.os_reserved_bytes

    def is_thrashing(self, working_set_bytes: int) -> bool:
        """Whether the working set exceeds available memory."""
        return working_set_bytes > self.available_bytes

    def swapped_fraction(self, working_set_bytes: int) -> float:
        """Fraction of the working set that must live in swap."""
        if working_set_bytes <= 0:
            return 0.0
        excess = working_set_bytes - self.available_bytes
        if excess <= 0:
            return 0.0
        return excess / working_set_bytes

    def slowdown_factor(self, working_set_bytes: int) -> float:
        """Multiplier on matching time for a given working set.

        Uniform-access model: a fraction ``f`` of accesses hit swapped
        pages, each costing ``swap_penalty`` times a resident access, so
        time scales by ``1 + f * (swap_penalty - 1)``.
        """
        fraction = self.swapped_fraction(working_set_bytes)
        if fraction == 0.0:
            return 1.0
        return 1.0 + fraction * (self.swap_penalty - 1.0)

    def adjusted_time(self, seconds: float, working_set_bytes: int) -> float:
        """Matching time after applying the swap model."""
        return seconds * self.slowdown_factor(working_set_bytes)

    def capacity_in_bytes(self) -> int:
        """Alias for :attr:`available_bytes` (readability in experiments)."""
        return self.available_bytes


#: The machine of paper Table 1.
PAPER_MACHINE = SimulatedMachine()
