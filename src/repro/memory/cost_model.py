"""Byte-cost model for engine data structures.

The paper's scalability argument is about *bytes*: "filtering algorithms
are designed as pure main memory solutions, hence their scalability
depends on available resources" (§1).  To compare engines independently
of CPython's object overhead (which would swamp the comparison and is an
artifact of the host language, not the algorithms), every engine reports
its memory consumption under the **paper's own cost model**:

* Boolean operator: 1 byte; child count: 1 byte; child width: 2 bytes;
  predicate identifier: 4 bytes (§3.3 — the basic encoding);
* hit vector and subscription-predicate count vector: 1 byte per
  (transformed) subscription, assuming at most 256 predicates per
  subscription (§3.3, following [2]);
* predicate bit vector: 1 bit per registered predicate;
* association/location table entries: 4-byte identifiers and 4-byte
  memory addresses.

The :class:`CostModel` centralizes these constants so the analytic
models in :mod:`repro.memory.analysis`, the engines' reported breakdowns
and the simulated machine all agree.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-field byte costs used by all memory accounting."""

    operator_bytes: int = 1
    child_count_bytes: int = 1
    child_width_bytes: int = 2
    predicate_id_bytes: int = 4
    subscription_id_bytes: int = 4
    pointer_bytes: int = 4          # loc(s) memory addresses
    counter_bytes: int = 1          # hit / count vector entries
    table_entry_overhead_bytes: int = 4  # per hash-table slot bookkeeping

    def association_table_bytes(
        self, predicate_count: int, reference_count: int
    ) -> int:
        """Size of a predicate→subscriptions association table.

        One keyed entry per predicate plus one subscription id per
        (predicate, subscription) reference.
        """
        keys = predicate_count * (
            self.predicate_id_bytes + self.table_entry_overhead_bytes
        )
        return keys + reference_count * self.subscription_id_bytes

    def location_table_bytes(self, subscription_count: int) -> int:
        """Size of the id(s) → loc(s) subscription location table."""
        return subscription_count * (
            self.subscription_id_bytes
            + self.pointer_bytes
            + self.table_entry_overhead_bytes
        )

    def vector_bytes(self, entries: int) -> int:
        """Size of a 1-byte-per-entry vector (hit / count vectors)."""
        return entries * self.counter_bytes

    def bit_vector_bytes(self, entries: int) -> int:
        """Size of a 1-bit-per-entry vector (predicate bit vector)."""
        return (entries + 7) // 8


DEFAULT_COST_MODEL = CostModel()
