"""Memory accounting: cost model, simulated machine, closed-form analysis."""

from .analysis import (
    PaperWorkloadShape,
    capacity,
    capacity_ratio,
    counting_bytes,
    noncanonical_bytes,
    noncanonical_tree_bytes,
)
from .cost_model import DEFAULT_COST_MODEL, CostModel
from .model import KIB, MIB, PAPER_MACHINE, SimulatedMachine

__all__ = [
    "PaperWorkloadShape",
    "capacity",
    "capacity_ratio",
    "counting_bytes",
    "noncanonical_bytes",
    "noncanonical_tree_bytes",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "KIB",
    "MIB",
    "PAPER_MACHINE",
    "SimulatedMachine",
]
