"""Baseline comparison: diff a fresh report against the committed one.

``python -m repro.bench.compare BENCH_4.json fresh.json`` joins the two
reports on record identity, applies per-metric noise floors
(:mod:`repro.bench.thresholds`), and exits nonzero when any point
regressed — the CI gate behind "every future PR proves it didn't slow
the hot path".

Policy
------
* **throughput** (``events_per_second``): a fresh point may drop at
  most ``time_tolerance`` below baseline (default
  :data:`~repro.bench.thresholds.QUICK_TIME_TOLERANCE`).  Points below
  the timer's resolution floor are skipped, not gated.
* **memory** (``memory_bytes``): deterministic under the paper's cost
  model, so growth beyond
  :data:`~repro.bench.thresholds.MEMORY_TOLERANCE` fails.
* **suppression** (``metrics.suppression_ratio``, network records):
  deterministic per workload seed; a drop of more than
  :data:`~repro.bench.thresholds.SUPPRESSION_TOLERANCE` (absolute)
  below baseline fails — it means covering-based table compaction
  silently stopped engaging.  Hardware mismatch never softens it.
* **coverage**: a baseline point missing from the fresh report is a
  failure (a silently dropped benchmark is how regressions hide);
  fresh points absent from the baseline are reported as additions and
  pass — that is how the matrix grows.
* **hardware mismatch**: when the two reports disagree on architecture,
  OS, or Python implementation (:data:`HARDWARE_KEYS`), timings are not
  comparable — regressions soften to warnings and the exit code stays
  zero unless ``--strict-hardware`` is given.  ``cpu_count`` and the
  interpreter version are embedded for forensics but do *not* soften
  the gate (the matrix is serial; the noise floor absorbs interpreter
  drift).  Memory comparisons stay hard either way, since the cost
  model does not depend on the machine.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Sequence

from .records import BenchRecord, BenchReport
from .thresholds import (
    MEMORY_TOLERANCE,
    MIN_GATED_EVENTS_PER_SECOND,
    QUICK_TIME_TOLERANCE,
    SUPPRESSION_TOLERANCE,
)

#: Environment keys whose disagreement makes *timings* incomparable and
#: softens the gate.  Deliberately narrow: the quick matrix is entirely
#: serial, so ``cpu_count`` does not shift its timings, and interpreter
#: minor-version drift (``python``) sits well inside the 25% noise
#: floor — both are embedded in reports for forensics but must not
#: quietly disarm the CI gate (a baseline generated on a 1-core
#: container would otherwise never gate a 4-core runner).
HARDWARE_KEYS = ("machine", "system", "implementation")


@dataclass(frozen=True)
class Regression:
    """One point that moved past its noise floor."""

    record: BenchRecord          # the fresh record
    metric: str                  # "events_per_second" | "memory_bytes"
    baseline_value: float
    fresh_value: float
    limit: float                 # the value the tolerance allowed

    @property
    def ratio(self) -> float:
        """fresh / baseline (below 1.0 = slower for throughput)."""
        if self.baseline_value == 0:
            return float("inf")
        return self.fresh_value / self.baseline_value

    def describe(self) -> str:
        if self.metric == "events_per_second":
            return (
                f"{self.record.label()}: {self.fresh_value:,.0f} ev/s vs "
                f"baseline {self.baseline_value:,.0f} "
                f"({self.ratio:.2f}x, floor {self.limit:,.0f})"
            )
        if self.metric == "suppression_ratio":
            return (
                f"{self.record.label()}: suppression "
                f"{self.fresh_value:.1%} vs baseline "
                f"{self.baseline_value:.1%} (floor {self.limit:.1%})"
            )
        return (
            f"{self.record.label()}: {self.fresh_value:,.0f} B vs "
            f"baseline {self.baseline_value:,.0f} "
            f"({self.ratio:.2f}x, cap {self.limit:,.0f})"
        )


@dataclass
class CompareResult:
    """Outcome of one baseline-versus-fresh comparison."""

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    missing: list[BenchRecord] = field(default_factory=list)   # baseline-only
    additions: list[BenchRecord] = field(default_factory=list)  # fresh-only
    skipped: list[BenchRecord] = field(default_factory=list)    # below floor
    compared: int = 0
    hardware_mismatch: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Gate verdict: no regressions and full baseline coverage."""
        return not self.regressions and not self.missing

    def summary(self) -> str:
        parts = [
            f"{self.compared} points compared",
            f"{len(self.regressions)} regressed",
            f"{len(self.improvements)} improved >10%",
        ]
        if self.missing:
            parts.append(f"{len(self.missing)} missing from fresh report")
        if self.additions:
            parts.append(f"{len(self.additions)} new")
        if self.skipped:
            parts.append(f"{len(self.skipped)} below timer floor (skipped)")
        return ", ".join(parts)


def environment_mismatch(
    baseline: dict, fresh: dict, *, keys: Sequence[str] = HARDWARE_KEYS
) -> list[str]:
    """Hardware/runtime keys on which the two reports disagree."""
    return [key for key in keys if baseline.get(key) != fresh.get(key)]


def compare_reports(
    baseline: BenchReport,
    fresh: BenchReport,
    *,
    time_tolerance: float = QUICK_TIME_TOLERANCE,
    memory_tolerance: float = MEMORY_TOLERANCE,
    min_events_per_second: float = MIN_GATED_EVENTS_PER_SECOND,
) -> CompareResult:
    """Join on record identity, apply the noise floors, collect verdicts.

    Purely functional — hardware-mismatch softening is the *caller's*
    policy (see :func:`main`); this function always reports what moved.
    """
    if not 0 <= time_tolerance < 1:
        raise ValueError("time_tolerance must be in [0, 1)")
    if memory_tolerance < 0:
        raise ValueError("memory_tolerance must be non-negative")
    result = CompareResult(
        hardware_mismatch=environment_mismatch(
            baseline.environment, fresh.environment
        )
    )
    fresh_map = fresh.record_map()
    baseline_map = baseline.record_map()
    for key, base in baseline_map.items():
        new = fresh_map.get(key)
        if new is None:
            result.missing.append(base)
            continue
        result.compared += 1
        if (
            base.events_per_second < min_events_per_second
            or new.events_per_second < min_events_per_second
        ):
            result.skipped.append(new)
        else:
            floor = base.events_per_second * (1.0 - time_tolerance)
            point = Regression(
                record=new,
                metric="events_per_second",
                baseline_value=base.events_per_second,
                fresh_value=new.events_per_second,
                limit=floor,
            )
            if new.events_per_second < floor:
                result.regressions.append(point)
            elif new.events_per_second > base.events_per_second * 1.10:
                result.improvements.append(point)
        cap = base.memory_bytes * (1.0 + memory_tolerance)
        if base.memory_bytes and new.memory_bytes > cap:
            result.regressions.append(
                Regression(
                    record=new,
                    metric="memory_bytes",
                    baseline_value=float(base.memory_bytes),
                    fresh_value=float(new.memory_bytes),
                    limit=cap,
                )
            )
        # suppression ratio (network records) is deterministic per seed,
        # like memory-model bytes: a drop past the absolute tolerance
        # means the covering path stopped engaging, and a hardware
        # mismatch never excuses it
        base_ratio = base.metrics.get("suppression_ratio")
        new_ratio = new.metrics.get("suppression_ratio")
        if base_ratio is not None and new_ratio is not None:
            floor = base_ratio - SUPPRESSION_TOLERANCE
            if new_ratio < floor:
                result.regressions.append(
                    Regression(
                        record=new,
                        metric="suppression_ratio",
                        baseline_value=base_ratio,
                        fresh_value=new_ratio,
                        limit=floor,
                    )
                )
    for key, new in fresh_map.items():
        if key not in baseline_map:
            result.additions.append(new)
    return result


def gate_verdict(
    result: CompareResult, *, strict_hardware: bool = False
) -> tuple[int, str]:
    """(exit code, verdict line) for a comparison — THE gate policy.

    Shared by ``python -m repro.bench.compare`` and the runner's
    ``--baseline`` option so both surfaces pass and fail identically.
    Hardware mismatch only excuses *timing* regressions; missing
    coverage and memory-model growth are machine-independent.
    """
    if result.ok:
        return 0, "gate: PASS"
    timing_only = not result.missing and all(
        point.metric == "events_per_second" for point in result.regressions
    )
    if timing_only and result.hardware_mismatch and not strict_hardware:
        return 0, (
            "gate: WARN — reports come from different hardware "
            f"(differs on: {', '.join(result.hardware_mismatch)}); "
            "timings are not comparable, treating regressions as warnings. "
            "Pass --strict-hardware to fail instead."
        )
    return 1, "gate: FAIL"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.compare BASELINE FRESH`` — the CI gate."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description=(
            "Diff a fresh benchmark report against a committed baseline; "
            "exit 1 on regression."
        ),
    )
    parser.add_argument("baseline", help="committed baseline (BENCH_<n>.json)")
    parser.add_argument("fresh", help="freshly generated report to gate")
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=QUICK_TIME_TOLERANCE,
        help=(
            "allowed fractional events/sec drop before failing "
            f"(default {QUICK_TIME_TOLERANCE}, the quick-scale noise floor)"
        ),
    )
    parser.add_argument(
        "--memory-tolerance",
        type=float,
        default=MEMORY_TOLERANCE,
        help=(
            "allowed fractional memory-model growth before failing "
            f"(default {MEMORY_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--strict-hardware",
        action="store_true",
        help=(
            "fail on regressions even when the reports were produced on "
            "different hardware (default: soften to a warning)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        baseline = BenchReport.load(args.baseline)
        fresh = BenchReport.load(args.fresh)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = compare_reports(
        baseline,
        fresh,
        time_tolerance=args.time_tolerance,
        memory_tolerance=args.memory_tolerance,
    )
    print(f"baseline: {args.baseline} (scale={baseline.scale})")
    print(f"fresh:    {args.fresh} (scale={fresh.scale})")
    print(result.summary())
    for point in result.improvements:
        print(f"  improved: {point.describe()}")
    for record in result.additions:
        print(f"  new point: {record.label()}")
    for record in result.missing:
        print(f"  MISSING: {record.label()} (in baseline, not in fresh)")
    for point in result.regressions:
        print(f"  REGRESSION: {point.describe()}")
    code, verdict = gate_verdict(result, strict_hardware=args.strict_hardware)
    print(verdict)
    return code


if __name__ == "__main__":
    sys.exit(main())
