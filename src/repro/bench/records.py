"""Structured benchmark results: records, reports, JSON round-trip.

The paper's contribution is a *performance* claim, so the repository
keeps a machine-readable performance trajectory: every benchmark run
produces a :class:`BenchReport` — a list of :class:`BenchRecord` points
plus environment metadata — that serializes to JSON, diffs against a
committed baseline (``BENCH_<n>.json``, see :mod:`repro.bench.compare`),
and gates CI on regressions.

Schema
------
A report is a JSON object::

    {
      "schema_version": 1,
      "scale": "quick" | "full",
      "environment": {"python": ..., "platform": ..., "cpu_count": ...},
      "records": [
        {
          "scenario":  "throughput" | "shard-scaling" | "skew" | "churn",
          "engine":    "<canonical registry name>",
          "shards":    1,
          "executor":  "serial",
          "partitioner": "hash",
          "batch_size": 256,
          "events":    512,
          "seconds":   0.0123,
          "events_per_second": 41626.0,
          "memory_bytes": 123456,
          "metrics":   {"candidates_probed_per_event": 13.2, ...}
        }, ...
      ]
    }

A record's identity — what the comparator joins baseline and fresh
reports on — is ``(scenario, engine, shards, executor, partitioner,
batch_size)``.  ``partitioner`` defaults to ``"hash"`` on read, so
reports written before the field existed load (and join) unchanged.
``metrics`` carries everything that *explains* the headline number
(per-event candidate probes, matches, shard speedups, churn mix) so a
regression report can say whether candidate counts moved or raw speed
did.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Bump when a field is added/renamed incompatibly; the comparator
#: refuses to diff reports with mismatched schema versions.
SCHEMA_VERSION = 1

#: The scenario names a runner-produced report may contain.  The
#: ``network-*`` family carries one scenario per overlay topology; its
#: records gate routing throughput *and* the ``suppression_ratio``
#: metric (see :mod:`repro.bench.compare`).
SCENARIOS = (
    "throughput",
    "shard-scaling",
    "shard-routing",
    "skew",
    "churn",
    "network-line",
    "network-star",
    "network-tree",
    "network-random",
)

#: Identity of one record inside a report.
RecordKey = tuple[str, str, int, str, str, int]


class SchemaError(ValueError):
    """A report (or record) does not conform to the bench schema."""


def environment_metadata() -> dict[str, Any]:
    """The hardware/runtime fingerprint embedded in every report.

    The comparator uses it to detect that a fresh report was produced on
    different hardware than the baseline — timings are then not
    comparable and regressions soften to warnings (see
    :func:`repro.bench.compare.environment_mismatch`).
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark point: a scenario × engine configuration measurement.

    Parameters
    ----------
    scenario:
        Workload family (one of :data:`SCENARIOS` for runner output;
        free-form for ad-hoc reports).
    engine:
        Canonical registry name of the (inner) engine.
    shards / executor / partitioner:
        The sharded-runtime configuration; ``shards=1`` with
        ``executor="serial"`` and ``partitioner="hash"`` is the
        unsharded point (unsharded engines have no placement, so those
        fields are pinned to the defaults for record stability).
    batch_size:
        Events per :meth:`~repro.core.base.FilterEngine.match_batch`
        call (1 = the per-event path).
    events:
        Events (churn: operations) measured per repeat.
    seconds:
        Best-of-repeats wall time for those events.
    events_per_second:
        The headline throughput — what the comparator gates on.
    memory_bytes:
        Engine working set under the paper's memory cost model.
    metrics:
        Explanatory side-channel: per-event counter averages
        (``candidates_probed_per_event``, ``matches_per_event``),
        shard ``speedup``, churn mix, ... — floats only.
    """

    scenario: str
    engine: str
    shards: int
    executor: str
    batch_size: int
    events: int
    seconds: float
    events_per_second: float
    memory_bytes: int
    partitioner: str = "hash"
    metrics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenario:
            raise SchemaError("record scenario must be non-empty")
        if not self.engine:
            raise SchemaError("record engine must be non-empty")
        if self.shards < 1:
            raise SchemaError("record shards must be at least 1")
        if not self.partitioner:
            raise SchemaError("record partitioner must be non-empty")
        if self.batch_size < 1:
            raise SchemaError("record batch_size must be at least 1")
        if self.events < 1:
            raise SchemaError("record events must be at least 1")
        if self.seconds < 0 or not math.isfinite(self.seconds):
            raise SchemaError("record seconds must be finite and non-negative")
        if self.events_per_second <= 0 or not math.isfinite(
            self.events_per_second
        ):
            raise SchemaError(
                "record events_per_second must be finite and positive "
                "(clamp timer-resolution measurements before recording)"
            )
        if self.memory_bytes < 0:
            raise SchemaError("record memory_bytes must be non-negative")
        metrics = dict(self.metrics)
        for name, value in metrics.items():
            if not math.isfinite(value):
                raise SchemaError(f"record metric {name!r} must be finite")
        object.__setattr__(self, "metrics", metrics)

    @property
    def key(self) -> RecordKey:
        """The identity the comparator joins on."""
        return (
            self.scenario,
            self.engine,
            self.shards,
            self.executor,
            self.partitioner,
            self.batch_size,
        )

    def label(self) -> str:
        """Human-readable point name for tables and regression output."""
        engine = self.engine
        if self.shards > 1:
            engine = f"{engine}×{self.shards}/{self.executor}"
            if self.partitioner != "hash":
                engine = f"{engine}/{self.partitioner}"
        return f"{self.scenario}:{engine}@b{self.batch_size}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "shards": self.shards,
            "executor": self.executor,
            "partitioner": self.partitioner,
            "batch_size": self.batch_size,
            "events": self.events,
            "seconds": self.seconds,
            "events_per_second": self.events_per_second,
            "memory_bytes": self.memory_bytes,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        if not isinstance(data, Mapping):
            raise SchemaError(f"record must be an object, got {data!r}")
        try:
            return cls(
                scenario=str(data["scenario"]),
                engine=str(data["engine"]),
                shards=int(data["shards"]),
                executor=str(data["executor"]),
                # reports predate the routing layer: absent means "hash"
                partitioner=str(data.get("partitioner", "hash")),
                batch_size=int(data["batch_size"]),
                events=int(data["events"]),
                seconds=float(data["seconds"]),
                events_per_second=float(data["events_per_second"]),
                memory_bytes=int(data["memory_bytes"]),
                metrics={
                    str(k): float(v)
                    for k, v in dict(data.get("metrics", {})).items()
                },
            )
        except KeyError as missing:
            raise SchemaError(f"record is missing field {missing}") from None
        except (TypeError, ValueError) as error:
            if isinstance(error, SchemaError):
                raise
            raise SchemaError(f"malformed record {data!r}: {error}") from None


@dataclass
class BenchReport:
    """A full benchmark run: environment metadata plus its records."""

    scale: str
    environment: dict[str, Any] = field(default_factory=environment_metadata)
    records: list[BenchRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.scale:
            raise SchemaError("report scale must be non-empty")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def record_map(self) -> dict[RecordKey, BenchRecord]:
        """Records keyed by identity; duplicate keys are a schema error."""
        mapping: dict[RecordKey, BenchRecord] = {}
        for record in self.records:
            if record.key in mapping:
                raise SchemaError(f"duplicate record key {record.key}")
            mapping[record.key] = record
        return mapping

    def engines(self) -> set[str]:
        """Engine names covered by at least one record."""
        return {record.engine for record in self.records}

    def scenarios(self) -> set[str]:
        """Scenario names covered by at least one record."""
        return {record.scenario for record in self.records}

    def validate(self) -> "BenchReport":
        """Check structural invariants; returns self for chaining."""
        if self.schema_version != SCHEMA_VERSION:
            raise SchemaError(
                f"schema version {self.schema_version} != {SCHEMA_VERSION}"
            )
        if not isinstance(self.environment, Mapping):
            raise SchemaError("environment must be a mapping")
        self.record_map()  # raises on duplicates
        return self

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "scale": self.scale,
            "environment": dict(self.environment),
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchReport":
        if not isinstance(data, Mapping):
            raise SchemaError(f"report must be an object, got {data!r}")
        try:
            version = int(data["schema_version"])
        except KeyError:
            raise SchemaError("report is missing 'schema_version'") from None
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema version {version} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        records_field = data.get("records", [])
        if not isinstance(records_field, Iterable) or isinstance(
            records_field, (str, bytes, Mapping)
        ):
            raise SchemaError("report 'records' must be an array")
        report = cls(
            scale=str(data.get("scale", "")),
            environment=dict(data.get("environment", {})),
            records=[BenchRecord.from_dict(r) for r in records_field],
            schema_version=version,
        )
        return report.validate()

    def to_json(self, *, indent: int | None = 2) -> str:
        # allow_nan=False: "Infinity"/"NaN" are not JSON; a report that
        # can't round-trip through jq/JSON.parse is not machine-readable
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=False, allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError(f"report is not valid JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the report as pretty-printed JSON (trailing newline)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
