"""The benchmark runner: one curated matrix, machine-readable output.

``python -m repro.bench --quick`` executes the matrix and emits a
:class:`~repro.bench.records.BenchReport`:

* **throughput** — the batched full-pipeline sweep
  (:func:`~repro.experiments.harness.run_throughput_sweep`) over every
  registry engine at batch sizes 1/32/256;
* **shard-scaling** — speedup-versus-shard-count curves
  (:func:`~repro.experiments.harness.run_shard_sweep`, serial executor
  so CI numbers are deterministic);
* **shard-routing** — routed-versus-hash partitioner curves on the
  skewed hot-key corpus (serial executor, per-event path): the regime
  where covering-hull shard pruning turns serial sharding into a win;
* **skew** — the :class:`~repro.workloads.scenarios.SkewedHotKeyScenario`
  hot-key workload, where candidate sets concentrate;
* **churn** — the :class:`~repro.workloads.scenarios.ChurnScenario`
  subscribe/unsubscribe stream, timing registration, withdrawal and
  matching together;
* **network** — the covering-routed broker overlay
  (:func:`~repro.experiments.harness.run_network_sweep`) across line,
  star, tree, and random topologies: routing throughput headlines,
  suppression ratio and registration compaction in the metrics.

Everything reuses the experiment harness — the runner adds *recording*
(counters, memory, environment), never a second measurement protocol.
Scales are data (:class:`BenchScale`); ``--quick`` is sized for a CI
gate, ``--full`` for a workstation trajectory point.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..core.registry import EngineSpec, build_engine, engine_names
from ..experiments.harness import (
    ShardScalingPoint,
    ThroughputPoint,
    measure_throughput,
    run_shard_sweep,
    run_throughput_sweep,
)
from ..indexes.manager import IndexManager
from ..predicates.registry import PredicateRegistry
from ..workloads.scenarios import ChurnScenario, SkewedHotKeyScenario
from .records import BenchRecord, BenchReport


@dataclass(frozen=True)
class BenchScale:
    """One named point in the size/precision trade-off, as plain data."""

    name: str
    #: throughput sweep
    subscriptions: int
    events: int
    batch_sizes: tuple[int, ...]
    repeats: int
    #: event value domain; small = heavy value repetition across a
    #: batch, the regime the phase-1 batch memoization targets
    value_range: int
    #: shard-scaling sweep
    shard_counts: tuple[int, ...]
    shard_engines: tuple[str, ...]
    #: shard-routing sweep (routed-vs-hash pruning on the skew corpus;
    #: larger populations than shard-scaling because pruning needs
    #: enough distinct hot keys to spread regions across shards)
    routing_subscriptions: int
    routing_events: int
    routing_shard_counts: tuple[int, ...]
    routing_engines: tuple[str, ...]
    #: skew workload
    skew_subscriptions: int
    skew_events: int
    skew_engines: tuple[str, ...]
    #: churn workload
    churn_ops: int
    churn_engines: tuple[str, ...]
    #: network routing workload (overlay topologies, covering on)
    network_topologies: tuple[str, ...]
    network_brokers: int
    network_subscriptions: int
    network_events: int
    network_engine: str
    network_batch_size: int


#: CI-gate sizing: every engine and every scenario is covered, total
#: wall time stays well under a minute on a shared runner.
QUICK = BenchScale(
    name="quick",
    subscriptions=300,
    events=256,
    batch_sizes=(1, 32, 256),
    repeats=3,
    value_range=16,
    shard_counts=(1, 2, 4),
    shard_engines=("noncanonical",),
    routing_subscriptions=600,
    routing_events=160,
    routing_shard_counts=(1, 8),
    routing_engines=("noncanonical",),
    skew_subscriptions=200,
    skew_events=256,
    skew_engines=("noncanonical", "counting"),
    churn_ops=400,
    churn_engines=("noncanonical", "noncanonical×4"),
    network_topologies=("line", "star", "tree", "random"),
    network_brokers=8,
    network_subscriptions=64,
    network_events=256,
    network_engine="noncanonical",
    network_batch_size=64,
)

#: Workstation sizing: larger populations, more repeats, tighter noise.
FULL = BenchScale(
    name="full",
    subscriptions=1000,
    events=512,
    batch_sizes=(1, 32, 256),
    repeats=5,
    value_range=16,
    shard_counts=(1, 2, 4, 8),
    shard_engines=("noncanonical", "counting-variant"),
    routing_subscriptions=2000,
    routing_events=300,
    routing_shard_counts=(1, 4, 8),
    routing_engines=("noncanonical",),
    skew_subscriptions=600,
    skew_events=512,
    skew_engines=("noncanonical", "counting", "counting-variant"),
    churn_ops=1500,
    churn_engines=("noncanonical", "noncanonical×4"),
    network_topologies=("line", "star", "tree", "random"),
    network_brokers=16,
    network_subscriptions=160,
    network_events=512,
    network_engine="noncanonical",
    network_batch_size=64,
)

SCALES: dict[str, BenchScale] = {QUICK.name: QUICK, FULL.name: FULL}


def resolve_scale(scale: BenchScale | str) -> BenchScale:
    """Accept a :class:`BenchScale` or a registered scale name."""
    if isinstance(scale, BenchScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; registered scales: "
            f"{', '.join(SCALES)}"
        ) from None


def scaled_down(scale: BenchScale | str, factor: int) -> BenchScale:
    """A copy of ``scale`` with every population divided by ``factor``.

    The smoke-test knob: tests shrink the quick scale further without
    inventing their own matrix.
    """
    if factor < 1:
        raise ValueError("factor must be at least 1")
    base = resolve_scale(scale)

    def shrink(population: int) -> int:
        return max(population // factor, 8)

    return replace(
        base,
        name=f"{base.name}/{factor}" if factor > 1 else base.name,
        subscriptions=shrink(base.subscriptions),
        events=shrink(base.events),
        repeats=1 if factor > 1 else base.repeats,
        routing_subscriptions=shrink(base.routing_subscriptions),
        routing_events=shrink(base.routing_events),
        skew_subscriptions=shrink(base.skew_subscriptions),
        skew_events=shrink(base.skew_events),
        churn_ops=shrink(base.churn_ops),
        network_subscriptions=shrink(base.network_subscriptions),
        network_events=shrink(base.network_events),
    )


def _spec_fields(name: str | EngineSpec) -> tuple[str, int, str, str]:
    """(canonical engine, shards, executor, partitioner) of a spec/name.

    Accepts the ``"noncanonical×4"`` shorthand, display-name aliases,
    and plain canonical names — the record fields come out normalized
    either way.
    """
    spec = EngineSpec(name) if isinstance(name, str) else name
    options = dict(spec.options)
    return (
        spec.name,
        int(options.get("shards", 1)),
        str(options.get("executor", "serial")),
        str(options.get("partitioner", "hash")),
    )


#: Elapsed times below the timer's own resolution are clamped to it, so
#: throughput stays finite (``Infinity`` is not JSON) and honest — the
#: measurement only says "faster than the timer can see".
_TIMER_RESOLUTION = time.get_clock_info("perf_counter").resolution or 1e-9


def _finite_throughput(events: int, seconds: float) -> float:
    """Events/sec with sub-resolution elapsed clamped to the resolution."""
    return events / max(seconds, _TIMER_RESOLUTION)


def _counter_metrics(counters: Mapping[str, float] | None) -> dict[str, float]:
    """Per-event counter averages under their trajectory metric names."""
    if not counters:
        return {}
    metrics = {
        "phase2_calls_per_event": counters.get("phase2_calls", 0.0),
        "candidates_probed_per_event": counters.get("candidates_probed", 0.0),
        "matches_per_event": counters.get("matches_found", 0.0),
    }
    # shard-fan-out counters only exist on sharded engines; recording
    # them unconditionally would add all-zero metrics to every record
    if counters.get("shards_probed"):
        metrics["shards_probed_per_event"] = counters["shards_probed"]
        metrics["shards_pruned_per_event"] = counters.get("shards_pruned", 0.0)
    return metrics


def _throughput_record(
    scenario: str,
    point: ThroughputPoint,
    *,
    engine: str,
    shards: int = 1,
    executor: str = "serial",
    partitioner: str = "hash",
    extra_metrics: Mapping[str, float] | None = None,
) -> BenchRecord:
    metrics = _counter_metrics(point.counters)
    if extra_metrics:
        metrics.update(extra_metrics)
    return BenchRecord(
        scenario=scenario,
        engine=engine,
        shards=shards,
        executor=executor,
        partitioner=partitioner,
        batch_size=point.batch_size,
        events=point.events,
        seconds=point.seconds,
        events_per_second=_finite_throughput(point.events, point.seconds),
        memory_bytes=point.memory_bytes,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# scenario phases
# ----------------------------------------------------------------------
def throughput_records(
    scale: BenchScale | str = QUICK,
    *,
    engines: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchRecord]:
    """The throughput sweep: every engine × every batch size."""
    scale = resolve_scale(scale)
    names = tuple(engines) if engines is not None else engine_names()
    results = run_throughput_sweep(
        subscription_count=scale.subscriptions,
        event_count=scale.events,
        batch_sizes=scale.batch_sizes,
        value_range=scale.value_range,
        engines=names,
        seed=seed,
        repeats=scale.repeats,
    )
    records = []
    # run_throughput_sweep keys results by engine *display* name, in
    # entry order; zip back to the entries to recover the spec fields.
    for name, points in zip(names, results.values()):
        engine, shards, executor, partitioner = _spec_fields(name)
        for point in points:
            records.append(
                _throughput_record(
                    "throughput",
                    point,
                    engine=engine,
                    shards=shards,
                    executor=executor,
                    partitioner=partitioner,
                )
            )
    return records


def shard_records(
    scale: BenchScale | str = QUICK,
    *,
    engines: Sequence[str] | None = None,
    executor: str = "serial",
    seed: int = 0,
) -> list[BenchRecord]:
    """The shard-scaling sweep: speedup per shard count per engine."""
    scale = resolve_scale(scale)
    names = tuple(engines) if engines is not None else scale.shard_engines
    results = run_shard_sweep(
        subscription_count=scale.subscriptions,
        shard_counts=scale.shard_counts,
        engines=names,
        executor=executor,
        event_count=scale.events,
        seed=seed,
        repeats=scale.repeats,
    )
    records = []
    for name, curve in results.items():
        for point in curve:
            records.append(_shard_record(point, engine=name))
    return records


def shard_routing_records(
    scale: BenchScale | str = QUICK,
    *,
    engines: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchRecord]:
    """The routed-vs-hash pruning sweep on the skewed hot-key corpus.

    Both partitioners are measured at every routing shard count with the
    serial executor on the per-event path (``batch_size=1``) — the
    configuration where pruned shards translate directly into skipped
    work.  The routed records carry ``shards_pruned_per_event`` in their
    metrics, so the trajectory shows *why* the throughput moved, and the
    comparator's existing throughput gate covers the routed win like any
    other point.  The unsharded baseline is recorded once (it has no
    placement, so the second sweep's identical ``shards=1`` point is
    dropped rather than duplicate a record key).
    """
    scale = resolve_scale(scale)
    names = tuple(engines) if engines is not None else scale.routing_engines
    records = []
    for partitioner in ("hash", "routed"):
        results = run_shard_sweep(
            subscription_count=scale.routing_subscriptions,
            shard_counts=scale.routing_shard_counts,
            engines=names,
            executor="serial",
            partitioner=partitioner,
            corpus="skew",
            batch_size=1,
            event_count=scale.routing_events,
            seed=seed,
            repeats=scale.repeats,
        )
        for name, curve in results.items():
            for point in curve:
                if point.shards == 1 and partitioner != "hash":
                    continue  # same unsharded baseline as the hash pass
                records.append(
                    _shard_record(point, engine=name, scenario="shard-routing")
                )
    return records


def _shard_record(
    point: ShardScalingPoint,
    *,
    engine: str,
    scenario: str = "shard-scaling",
) -> BenchRecord:
    metrics = _counter_metrics(point.counters)
    # a sub-resolution measurement makes the harness speedup infinite;
    # record 0.0 ("no usable speedup signal") rather than break the schema
    metrics["speedup"] = (
        point.speedup if math.isfinite(point.speedup) else 0.0
    )
    return BenchRecord(
        scenario=scenario,
        engine=engine,
        shards=point.shards,
        executor=point.executor,
        partitioner=point.partitioner,
        batch_size=point.batch_size,
        events=point.events,
        seconds=point.seconds,
        events_per_second=_finite_throughput(point.events, point.seconds),
        memory_bytes=point.memory_bytes,
        metrics=metrics,
    )


def skew_records(
    scale: BenchScale | str = QUICK,
    *,
    engines: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchRecord]:
    """The hot-key workload: Zipf-skewed keys, concentrated candidates.

    All engines share one registry/index manager and the same skewed
    subscription population — identical phase 1, as everywhere in the
    reproduction.
    """
    scale = resolve_scale(scale)
    names = tuple(engines) if engines is not None else scale.skew_engines
    scenario = SkewedHotKeyScenario(seed=seed)
    subscriptions = scenario.subscriptions(scale.skew_subscriptions)
    events = scenario.events(scale.skew_events)
    registry = PredicateRegistry()
    indexes = IndexManager()
    records = []
    for name in names:
        engine = build_engine(name, registry=registry, indexes=indexes)
        try:
            for subscription in subscriptions:
                engine.register(subscription)
            point = measure_throughput(
                engine,
                events,
                batch_size=max(scale.batch_sizes),
                repeats=scale.repeats,
            )
            canonical, shards, executor, partitioner = _spec_fields(name)
            records.append(
                _throughput_record(
                    "skew",
                    point,
                    engine=canonical,
                    shards=shards,
                    executor=executor,
                    partitioner=partitioner,
                )
            )
        finally:
            engine.close()
    return records


def churn_records(
    scale: BenchScale | str = QUICK,
    *,
    engines: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchRecord]:
    """The subscribe/unsubscribe churn workload, timed end to end.

    One deterministic operation stream is materialized once and replayed
    against a fresh engine per repeat (churn mutates engine state, so
    repeats cannot share it).  The headline number is *operations* per
    second — registrations and withdrawals count as work, exactly the
    cost the paper's §2.1 unsubscription discussion is about.
    """
    scale = resolve_scale(scale)
    names = tuple(engines) if engines is not None else scale.churn_engines
    churn = ChurnScenario(seed=seed)
    ops = list(churn.ops(scale.churn_ops))
    op_count = len(ops)
    publishes = sum(1 for kind, _ in ops if kind == "publish")
    subscribes = sum(1 for kind, _ in ops if kind == "subscribe")
    records = []
    for name in names:
        spec = EngineSpec(name)
        best = float("inf")
        matches = 0
        memory = 0
        counters: Mapping[str, float] | None = None
        for _ in range(max(scale.repeats, 1)):
            engine = spec.build()
            try:
                engine.reset_counters()
                start = time.perf_counter()
                trace = churn.apply(engine, iter(ops))
                elapsed = time.perf_counter() - start
                best = min(best, elapsed)
                matches = sum(len(matched) for matched in trace)
                memory = engine.memory_bytes()
                counters = {
                    key: value / max(publishes, 1)
                    for key, value in engine.counters.snapshot().items()
                }
            finally:
                engine.close()
        canonical, shards, executor, partitioner = _spec_fields(spec)
        records.append(
            BenchRecord(
                scenario="churn",
                engine=canonical,
                shards=shards,
                executor=executor,
                partitioner=partitioner,
                batch_size=1,  # churn publishes take the per-event path
                events=op_count,
                seconds=best,
                events_per_second=_finite_throughput(op_count, best),
                memory_bytes=memory,
                metrics={
                    **_counter_metrics(counters),
                    "publish_ops": float(publishes),
                    "subscribe_ops": float(subscribes),
                    "unsubscribe_ops": float(op_count - publishes - subscribes),
                    "matches_per_publish": matches / max(publishes, 1),
                },
            )
        )
    return records


def network_records(
    scale: BenchScale | str = QUICK,
    *,
    seed: int = 0,
) -> list[BenchRecord]:
    """The overlay routing workload: one record per topology.

    Each record measures the covering-enabled overlay (the production
    default) end to end — per-broker matching, reverse-path forwarding,
    home delivery — on the covering-rich
    :class:`~repro.workloads.scenarios.NetworkChurnScenario` population.
    The flooding configuration is measured alongside as the comparison
    point and reported in the metrics (``flooding_events_per_second``),
    together with ``suppression_ratio`` and per-broker registration
    figures; the comparator gates the ratio like memory-model bytes
    (deterministic per seed — see :mod:`repro.bench.compare`).
    """
    from ..experiments.harness import run_network_sweep

    scale = resolve_scale(scale)
    points = run_network_sweep(
        topologies=scale.network_topologies,
        broker_count=scale.network_brokers,
        subscription_count=scale.network_subscriptions,
        event_count=scale.network_events,
        batch_size=scale.network_batch_size,
        engine=scale.network_engine,
        covering=(True, False),
        seed=seed,
        repeats=scale.repeats,
    )
    flooding = {
        point.topology: point for point in points if not point.covering
    }
    records = []
    for point in points:
        if not point.covering:
            continue
        baseline = flooding.get(point.topology)
        records.append(
            BenchRecord(
                scenario=f"network-{point.topology}",
                engine=point.engine,
                shards=1,
                executor="serial",
                batch_size=scale.network_batch_size,
                events=point.events,
                seconds=point.seconds,
                events_per_second=_finite_throughput(
                    point.events, point.seconds
                ),
                memory_bytes=point.memory_bytes,
                metrics={
                    "suppression_ratio": point.suppression_ratio,
                    "registrations_per_broker": point.registrations_per_broker,
                    "suppressed_registrations": float(
                        point.suppressed_registrations
                    ),
                    "broker_hops_per_event": point.broker_hops / point.events,
                    "deliveries_per_event": point.deliveries / point.events,
                    "routing_bytes": float(point.routing_bytes),
                    **(
                        {
                            "flooding_events_per_second": _finite_throughput(
                                baseline.events, baseline.seconds
                            ),
                            "flooding_registrations_per_broker": (
                                baseline.registrations_per_broker
                            ),
                        }
                        if baseline is not None
                        else {}
                    ),
                },
            )
        )
    return records


# ----------------------------------------------------------------------
# the full matrix
# ----------------------------------------------------------------------
#: Scenario-family names, in matrix order.  ``run_bench``'s
#: ``scenarios`` prefixes select families through :func:`_match_family`;
#: the ``network`` family fans out into ``network-<topology>`` records.
SCENARIO_FAMILIES = (
    "throughput",
    "shard-scaling",
    "shard-routing",
    "skew",
    "churn",
    "network",
)


def _match_family(family: str, prefixes: Sequence[str]) -> bool:
    """Whether a family could produce a record matching any prefix.

    Either direction of prefixing counts: ``"thr"`` selects the
    ``throughput`` family, and ``"network-tree"`` selects ``network``
    (whose records it then filters down to the tree topology).
    """
    return any(
        family.startswith(prefix) or prefix.startswith(family)
        for prefix in prefixes
    )


def run_bench(
    scale: BenchScale | str = "quick",
    *,
    engines: Sequence[str] | None = None,
    seed: int = 0,
    scenarios: Sequence[str] | None = None,
    shards: Sequence[int] | None = None,
    executors: Sequence[str] | None = None,
) -> BenchReport:
    """Execute the curated matrix and return the validated report.

    ``engines`` restricts the *throughput* phase (the other phases keep
    their scale-curated engine sets) — the knob tests and bisections
    use; ``None`` covers the whole registry.  ``scenarios`` restricts
    the matrix to records whose scenario name starts with one of the
    given prefixes — the iterate-on-one-family knob
    (``python -m repro.bench --scenarios throughput``); unselected
    families never run.  ``shards``/``executors`` filter the finished
    records down to the given shard counts / executor names — pure
    post-filters (every selected family still runs, since shard curves
    need their ``shards=1`` baseline measured either way).  Filtered
    reports are for iteration, not for committing: the comparator fails
    on baseline points it is missing.
    """
    scale = resolve_scale(scale)
    phases = {
        "throughput": lambda: throughput_records(
            scale, engines=engines, seed=seed
        ),
        "shard-scaling": lambda: shard_records(scale, seed=seed),
        "shard-routing": lambda: shard_routing_records(scale, seed=seed),
        "skew": lambda: skew_records(scale, seed=seed),
        "churn": lambda: churn_records(scale, seed=seed),
        "network": lambda: network_records(scale, seed=seed),
    }
    if scenarios is not None:
        prefixes = tuple(scenarios)
        selected = [
            family
            for family in SCENARIO_FAMILIES
            if _match_family(family, prefixes)
        ]
        if not selected:
            raise ValueError(
                f"no scenario family matches {prefixes!r}; families: "
                f"{', '.join(SCENARIO_FAMILIES)}"
            )
    else:
        prefixes = None
        selected = list(SCENARIO_FAMILIES)
    records = [
        record for family in selected for record in phases[family]()
    ]
    if prefixes is not None:
        records = [
            record
            for record in records
            if any(record.scenario.startswith(p) for p in prefixes)
        ]
    if shards is not None:
        wanted_shards = {int(count) for count in shards}
        records = [r for r in records if r.shards in wanted_shards]
    if executors is not None:
        wanted_executors = set(executors)
        records = [r for r in records if r.executor in wanted_executors]
    return BenchReport(scale=scale.name, records=records).validate()
