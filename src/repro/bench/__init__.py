"""Benchmark observability: records, runner, baseline comparison.

The paper's contribution is a performance claim; this package keeps the
repository honest about it over time:

* :mod:`repro.bench.records` — :class:`BenchRecord`/:class:`BenchReport`
  structured results with environment metadata and a JSON round-trip;
* :mod:`repro.bench.runner` — ``python -m repro.bench`` executes a
  curated scenario × engine matrix by *reusing* the experiment harness;
* :mod:`repro.bench.compare` — ``python -m repro.bench.compare`` diffs
  a fresh report against the committed ``BENCH_<n>.json`` baseline and
  exits nonzero on regression (the CI gate);
* :mod:`repro.bench.thresholds` — every pass/fail number, in one place.

See DESIGN.md §7 for the record schema, the noise-floor policy, and how
to refresh the baseline.
"""

from .records import (
    SCHEMA_VERSION,
    SCENARIOS,
    BenchRecord,
    BenchReport,
    SchemaError,
    environment_metadata,
)
from .runner import (
    FULL,
    QUICK,
    SCALES,
    BenchScale,
    churn_records,
    network_records,
    resolve_scale,
    run_bench,
    scaled_down,
    shard_records,
    shard_routing_records,
    skew_records,
    throughput_records,
)

#: Comparator names re-exported lazily: eagerly importing ``.compare``
#: here would pre-load it into ``sys.modules`` and make ``python -m
#: repro.bench.compare`` emit runpy's double-import RuntimeWarning in
#: every CI log.
_COMPARE_EXPORTS = (
    "CompareResult",
    "Regression",
    "compare_reports",
    "environment_mismatch",
)


def __getattr__(name: str):
    if name in _COMPARE_EXPORTS:
        from . import compare

        return getattr(compare, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "BenchRecord",
    "BenchReport",
    "SchemaError",
    "environment_metadata",
    "BenchScale",
    "QUICK",
    "FULL",
    "SCALES",
    "resolve_scale",
    "run_bench",
    "scaled_down",
    "throughput_records",
    "shard_records",
    "shard_routing_records",
    "skew_records",
    "churn_records",
    "network_records",
    "CompareResult",
    "Regression",
    "compare_reports",
    "environment_mismatch",
]
