"""Every performance threshold, in one place.

Benchmarks (``benchmarks/``), the CI regression gate, and the comparator
all import their pass/fail numbers from here — a threshold change is one
edit, one review, one diff line.

Noise-floor policy
------------------
Quick-scale runs on shared CI runners are noisy: point estimates are
best-of-repeats, but ±10-20% run-to-run jitter is normal.  The
regression gate therefore uses a 25% throughput tolerance at quick
scale — tight enough to catch a real hot-path regression (the batch
pipeline win alone is ~2×), loose enough that scheduler noise does not
turn CI red.  Memory under the paper's cost model is deterministic for
a fixed workload, so its tolerance is much tighter and catches silent
working-set growth.  Structural assertions (batch beats per-event,
serial sharding does not collapse) keep their own margins below.
"""

from __future__ import annotations

#: Quick-scale CI gate: fresh events/sec may drop at most this fraction
#: below the committed baseline before the comparator fails the run.
QUICK_TIME_TOLERANCE = 0.25

#: Full-scale runs repeat more and amortize noise; the gate tightens.
FULL_TIME_TOLERANCE = 0.15

#: Memory-model bytes are deterministic per workload; growth beyond
#: this fraction means a data structure actually got bigger.
MEMORY_TOLERANCE = 0.05

#: Points slower than this many events/sec are below the timer's
#: resolution at quick scale; the comparator skips them rather than
#: gate on noise.
MIN_GATED_EVENTS_PER_SECOND = 1.0

#: Batch pipeline: batch=256 must beat per-event publishing by this
#: factor on the non-canonical engine (structural win is ~1.7-2×; the
#: margin holds on noisy shared runners).
BATCH256_MIN_SPEEDUP = 1.1

#: The bit-packed phase-2 kernel (PR 8) must keep the rewritten engines
#: (non-canonical, counting, counting-variant) at least this many times
#: faster at batch=256 than their pre-kernel BENCH_5 records —
#: benchmarks/test_bitset_kernel.py asserts it on the *committed*
#: trajectory points, so the floor is machine-drift-free: both numbers
#: come from the same container class, and day-to-day CI variance is
#: handled separately by the BENCH_8 comparator gate.
BITSET_BATCH256_MIN_SPEEDUP = 5.0

#: Sharding without parallelism pays union/dispatch overhead only: the
#: 4-shard serial configuration must keep at least this fraction of the
#: unsharded throughput.
SERIAL_4SHARD_MIN_RATIO = 0.5

#: With the process executor, 4 shards must reach this speedup over the
#: single-shard serial baseline on at least one engine (multi-core
#: runners only; the benchmark skips on <2 cores).
PROCESS_4SHARD_MIN_SPEEDUP = 1.3

#: The routed partitioner must beat the hash partitioner by this factor
#: at the same shard count on the skewed hot-key corpus (serial
#: executor, per-event path).  Both configurations are measured in the
#: same process a few seconds apart, so the ratio is robust to the
#: baseline-first CPU-frequency bias that makes absolute ``speedup``
#: values noisy; observed values sit at 1.3–1.5×.
ROUTED_OVER_HASH_MIN_RATIO = 1.15

#: Shard pruning must make *serial* sharding a win, not just less of a
#: loss: routed sharding must beat the unsharded engine on the skewed
#: corpus.  ``run_shard_sweep`` measures the baseline first and the
#: sharded points later, which systematically flatters the baseline
#: (CPU boost decays over the run) — so the benchmark asserting this
#: floor interleaves its own baseline/routed measurements instead of
#: trusting the sweep's ``speedup`` field.
ROUTED_SERIAL_MIN_SPEEDUP = 1.0

#: Suppression ratio is a *deterministic* function of the workload seed
#: and the covering implementation, like memory-model bytes — but
#: population shrinking (--shrink) and future workload retunes move it
#: legitimately.  A fresh ratio may sit at most this far (absolute)
#: below the baseline before the comparator fails the run.
SUPPRESSION_TOLERANCE = 0.05

#: The quick-scale network workload is covering-rich by construction;
#: the tree-topology run must suppress at least this fraction of remote
#: registrations or the covering path has silently stopped engaging.
NETWORK_TREE_MIN_SUPPRESSION = 0.10

#: Registering N covering-friendly subscriptions into the CoveringIndex
#: must stay o(N²) in *exact* covers() calls: the benchmark asserts at
#: most this many exact tests per subscription on the band corpus (an
#: all-pairs scan would need ~N/2 per subscription, ~100× this at the
#: benchmark's N=512).
COVERING_MAX_EXACT_CALLS_PER_SUB = 6.0
