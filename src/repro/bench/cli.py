"""Command line of the benchmark runner (``python -m repro.bench``)."""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Sequence

from ..core.registry import engine_names
from ..core.sharded import executor_names
from ..experiments.report import format_table
from .compare import compare_reports, gate_verdict
from .records import BenchReport
from .runner import SCENARIO_FAMILIES, _match_family, run_bench, scaled_down
from .thresholds import QUICK_TIME_TOLERANCE


def render_report(report: BenchReport) -> str:
    """The report as a human-readable table (the JSON stays canonical)."""
    rows = []
    for record in report.records:
        metrics = record.metrics
        rows.append(
            (
                record.scenario,
                record.label().split(":", 1)[1],
                record.batch_size,
                f"{record.events_per_second:,.0f}",
                f"{metrics.get('candidates_probed_per_event', 0.0):.1f}",
                f"{metrics.get('matches_per_event', 0.0):.2f}",
                f"{record.memory_bytes:,}",
            )
        )
    table = format_table(
        ("scenario", "engine", "batch", "ev/s", "probes/ev", "match/ev", "bytes"),
        rows,
    )
    environment = ", ".join(
        f"{key}={value}" for key, value in report.environment.items()
    )
    return f"{table}\nscale={report.scale} | {environment}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Run the curated benchmark matrix and emit a machine-readable "
            "report (see DESIGN.md §7)."
        ),
    )
    scale_group = parser.add_mutually_exclusive_group()
    scale_group.add_argument(
        "--quick",
        dest="scale",
        action="store_const",
        const="quick",
        help="CI-gate sizing (~a minute on a shared runner); the default",
    )
    scale_group.add_argument(
        "--full",
        dest="scale",
        action="store_const",
        const="full",
        help="workstation sizing: larger populations, more repeats",
    )
    parser.set_defaults(scale="quick")
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the JSON report here (defaults to stdout table only)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        metavar="NAME",
        help=(
            "restrict the throughput phase to these registry engines "
            f"(default: all of {', '.join(engine_names())})"
        ),
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        metavar="PREFIX",
        help=(
            "run only scenario families whose record names start with one "
            "of these prefixes (e.g. 'throughput', 'churn', "
            "'network-tree'); the full matrix runs when omitted.  Partial "
            "reports are for iteration — a --baseline diff fails on the "
            "missing points"
        ),
    )
    parser.add_argument(
        "--shards",
        nargs="+",
        type=int,
        metavar="N",
        help=(
            "keep only records at these shard counts (e.g. '--shards 1 8' "
            "to compare a scaling endpoint against its baseline); the "
            "matrix still runs in full — this filters the report, like "
            "--scenarios"
        ),
    )
    parser.add_argument(
        "--executors",
        nargs="+",
        metavar="NAME",
        help=(
            "keep only records produced under these shard executors "
            f"(registered: {', '.join(executor_names())}); unsharded "
            "records carry executor=serial"
        ),
    )
    parser.add_argument(
        "--shrink",
        type=int,
        default=1,
        metavar="N",
        help=(
            "divide every population by N (smoke-testing the runner "
            "itself; trajectory reports should use 1)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=int,
        metavar="N",
        help="override the scale's repeat count",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="workload seed (default 0, the committed-baseline seed)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "after the run, diff against this committed report and exit "
            "nonzero on regression (same gate as repro.bench.compare)"
        ),
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=QUICK_TIME_TOLERANCE,
        help=(
            "noise floor for the --baseline gate (default "
            f"{QUICK_TIME_TOLERANCE}; shrunken smoke runs need a looser "
            "one, their timings sit at the timer's resolution)"
        ),
    )
    parser.add_argument(
        "--strict-hardware",
        action="store_true",
        help=(
            "fail the --baseline gate on timing regressions even when "
            "the baseline comes from different hardware"
        ),
    )
    args = parser.parse_args(argv)
    if args.scenarios and not any(
        _match_family(family, args.scenarios)
        for family in SCENARIO_FAMILIES
    ):
        parser.error(
            f"--scenarios {' '.join(args.scenarios)} matches no scenario "
            f"family (families: {', '.join(SCENARIO_FAMILIES)})"
        )
    if args.shards is not None and any(count < 1 for count in args.shards):
        parser.error("--shards counts must be at least 1")
    if args.executors is not None:
        unknown = sorted(set(args.executors) - set(executor_names()))
        if unknown:
            parser.error(
                f"unknown executors: {', '.join(unknown)} "
                f"(registered: {', '.join(executor_names())})"
            )
    scale = scaled_down(args.scale, args.shrink)
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error("--repeats must be at least 1")
        scale = replace(scale, repeats=args.repeats)
    started = time.perf_counter()
    report = run_bench(
        scale,
        engines=args.engines,
        seed=args.seed,
        scenarios=args.scenarios,
        shards=args.shards,
        executors=args.executors,
    )
    elapsed = time.perf_counter() - started
    print(render_report(report))
    print(
        f"{len(report.records)} records over {len(report.scenarios())} "
        f"scenarios and {len(report.engines())} engines in {elapsed:.1f}s"
    )
    if args.out:
        report.save(args.out)
        print(f"report written to {args.out}")
    if args.baseline:
        baseline = BenchReport.load(args.baseline)
        result = compare_reports(
            baseline, report, time_tolerance=args.time_tolerance
        )
        print(f"baseline {args.baseline}: {result.summary()}")
        for point in result.regressions:
            print(f"  REGRESSION: {point.describe()}")
        code, verdict = gate_verdict(
            result, strict_hardware=args.strict_hardware
        )
        print(verdict)
        return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
